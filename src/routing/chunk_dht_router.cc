#include "routing/chunk_dht_router.h"

#include <stdexcept>

namespace sigma {

NodeId ChunkDhtRouter::route(const std::vector<ChunkRecord>& unit,
                             std::span<const NodeProbe* const> nodes,
                             RouteContext& ctx) {
  (void)ctx;  // DHT placement: no pre-routing messages
  if (nodes.empty()) throw std::invalid_argument("ChunkDhtRouter: no nodes");
  if (unit.empty()) return 0;
  // Units are single chunks; a multi-chunk unit is placed by its first
  // chunk (the cluster layer splits per-chunk before calling).
  return static_cast<NodeId>(unit.front().fp.prefix64() % nodes.size());
}

}  // namespace sigma

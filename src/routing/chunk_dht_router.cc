#include "routing/chunk_dht_router.h"

#include <stdexcept>

namespace sigma {

NodeId ChunkDhtRouter::route(const std::vector<ChunkRecord>& unit,
                             const ProbeSet& probes, RouteContext& ctx) {
  (void)ctx;  // DHT placement: no pre-routing messages, no probe round
  if (probes.size() == 0) {
    throw std::invalid_argument("ChunkDhtRouter: no nodes");
  }
  if (unit.empty()) return 0;
  // Units are single chunks; a multi-chunk unit is placed by its first
  // chunk (the cluster layer splits per-chunk before calling).
  return static_cast<NodeId>(unit.front().fp.prefix64() % probes.size());
}

}  // namespace sigma

// HYDRAstor-style chunk-level DHT routing [Dubnicki et al., FAST'09]:
// every chunk is placed by `fingerprint mod N`. Duplicate elimination is
// then perfect *globally* for identical chunks (the same fingerprint always
// lands on the same node), but locality is destroyed — consecutive chunks
// scatter across the cluster — which is why HYDRAstor needs very large
// chunks (64 KB) to stay efficient (paper Section 2.1, Table 1).
#pragma once

#include "routing/router.h"

namespace sigma {

class ChunkDhtRouter final : public Router {
 public:
  std::string name() const override { return "ChunkDHT"; }
  RoutingGranularity granularity() const override {
    return RoutingGranularity::kChunk;
  }

  using Router::route;
  NodeId route(const std::vector<ChunkRecord>& unit, const ProbeSet& probes,
               RouteContext& ctx) override;
};

}  // namespace sigma

#include "routing/stateless_router.h"

#include <stdexcept>

namespace sigma {

NodeId StatelessRouter::route(const std::vector<ChunkRecord>& unit,
                              std::span<const NodeProbe* const> nodes,
                              RouteContext& ctx) {
  (void)ctx;  // stateless: no pre-routing messages
  if (nodes.empty()) throw std::invalid_argument("StatelessRouter: no nodes");
  if (unit.empty()) return 0;

  // Representative fingerprint = the minimum chunk fingerprint, the same
  // feature Sigma-Dedupe generalizes into a k-wide handprint.
  const Handprint rep = compute_handprint(unit, 1);
  return static_cast<NodeId>(rep.front().prefix64() % nodes.size());
}

}  // namespace sigma

#include "routing/stateless_router.h"

#include <stdexcept>

namespace sigma {

NodeId StatelessRouter::route(const std::vector<ChunkRecord>& unit,
                              const ProbeSet& probes, RouteContext& ctx) {
  (void)ctx;  // stateless: no pre-routing messages, no probe round
  if (probes.size() == 0) {
    throw std::invalid_argument("StatelessRouter: no nodes");
  }
  if (unit.empty()) return 0;

  // Representative fingerprint = the minimum chunk fingerprint, the same
  // feature Sigma-Dedupe generalizes into a k-wide handprint.
  const Handprint rep = compute_handprint(unit, 1);
  return static_cast<NodeId>(rep.front().prefix64() % probes.size());
}

}  // namespace sigma

// The remote-probe surface of a deduplication node — the part of a node
// that data-routing schemes query before placing a routing unit (paper
// Algorithm 1 step 2 and the EMC stateful sampled probe).
//
// Routers program against this interface instead of concrete nodes so the
// same routing code runs in both deployment modes: the direct-call
// simulator (DedupNode implements NodeProbe in-process) and the
// message-passing service stack (service::NodeClient implements it with
// RPCs over a Transport). Probe *message* accounting stays in the routing
// layer (RouteContext), so Fig. 7's metric is identical in both modes.
#pragma once

#include <cstdint>
#include <vector>

#include "chunking/super_chunk.h"

namespace sigma {

using NodeId = std::uint32_t;

class NodeProbe {
 public:
  virtual ~NodeProbe() = default;

  /// Algorithm 1 step 2: how many of these representative fingerprints are
  /// present in the node's similarity index?
  virtual std::size_t resemblance_count(const Handprint& handprint) const = 0;

  /// EMC-stateful probe: how many of these (sampled) chunk fingerprints
  /// does the node already store?
  virtual std::size_t chunk_match_count(
      const std::vector<Fingerprint>& fps) const = 0;

  /// Physical capacity used (for the load-balance discount).
  virtual std::uint64_t stored_bytes() const = 0;
};

}  // namespace sigma

// The remote-probe surface of a deduplication node — the part of a node
// that data-routing schemes query before placing a routing unit (paper
// Algorithm 1 step 2 and the EMC stateful sampled probe).
//
// Routers program against these interfaces instead of concrete nodes so
// the same routing code runs in both deployment modes: the direct-call
// simulator (DedupNode implements NodeProbe in-process) and the
// message-passing service stack (service::NodeClient implements it with
// RPCs over a Transport). Probe *message* accounting stays in the routing
// layer (RouteContext), so Fig. 7's metric is identical in both modes.
//
// NodeProbe is the per-node query surface; ProbeSet is the scatter-gather
// probe plane on top of it: one gather() issues every per-node query of a
// routing decision at once, so a transport-backed implementation can put
// all probes in flight together (~1 round-trip per decision) instead of
// paying one blocking round-trip per node.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "chunking/super_chunk.h"

namespace sigma {

using NodeId = std::uint32_t;

class NodeProbe {
 public:
  virtual ~NodeProbe() = default;

  /// Algorithm 1 step 2: how many of these representative fingerprints are
  /// present in the node's similarity index?
  virtual std::size_t resemblance_count(const Handprint& handprint) const = 0;

  /// EMC-stateful probe: how many of these (sampled) chunk fingerprints
  /// does the node already store?
  virtual std::size_t chunk_match_count(
      const std::vector<Fingerprint>& fps) const = 0;

  /// Physical capacity used (for the load-balance discount).
  virtual std::uint64_t stored_bytes() const = 0;
};

/// Which per-node index a scatter-gather probe round queries.
enum class ProbeKind : std::uint8_t {
  kResemblance,  // handprint vs similarity index (Sigma, Algorithm 1)
  kChunkMatch,   // sampled fingerprints vs chunk index (EMC stateful)
};

/// Everything one routing decision learns from the fleet: per-candidate
/// match counts plus every node's storage usage (the balance-discount
/// input, Algorithm 1 step 3).
struct ProbeRound {
  /// Match counts, parallel to the `candidates` passed to gather().
  std::vector<std::size_t> matches;
  /// stored_bytes for every node in the cluster, indexed by NodeId.
  std::vector<std::uint64_t> usage;
};

/// Scatter-gather probe plane over a fleet of nodes. Implementations:
/// DirectProbeSet (in-process virtual calls, optionally fanned across a
/// ThreadPool) and service::ClientProbeSet (all RPCs issued as pending
/// calls up front and drained together — one round-trip per decision over
/// loopback or TCP).
class ProbeSet {
 public:
  virtual ~ProbeSet() = default;

  /// Number of nodes behind this probe plane.
  virtual std::size_t size() const = 0;

  /// One scatter-gather round: ask each node in `candidates` for its
  /// match count against `fps` (`kind` selects the index) and every node
  /// for its stored bytes. Candidate ids must be < size(); throws
  /// std::out_of_range otherwise.
  virtual ProbeRound gather(ProbeKind kind,
                            std::span<const NodeId> candidates,
                            const std::vector<Fingerprint>& fps) const = 0;

 protected:
  /// Enforces the candidate-id precondition; implementations call this
  /// at the top of gather().
  void validate_candidates(std::span<const NodeId> candidates) const {
    for (NodeId c : candidates) {
      if (c >= size()) {
        throw std::out_of_range("ProbeSet: candidate node " +
                                std::to_string(c) + " >= cluster size " +
                                std::to_string(size()));
      }
    }
  }
};

}  // namespace sigma

#include "node/probe_set.h"

namespace sigma {

ProbeRound DirectProbeSet::gather(ProbeKind kind,
                                  std::span<const NodeId> candidates,
                                  const std::vector<Fingerprint>& fps) const {
  validate_candidates(candidates);
  ProbeRound round;
  round.matches.resize(candidates.size(), 0);
  round.usage.resize(nodes_.size(), 0);

  auto probe_match = [&](std::size_t i) {
    const NodeProbe& node = *nodes_[candidates[i]];
    round.matches[i] = kind == ProbeKind::kResemblance
                           ? node.resemblance_count(fps)
                           : node.chunk_match_count(fps);
  };
  auto probe_usage = [&](std::size_t i) {
    round.usage[i] = nodes_[i]->stored_bytes();
  };

  if (pool_ != nullptr && nodes_.size() > 1) {
    // Fan the whole round across the pool: one task per query, usage
    // queries first so they interleave with the (heavier) match lookups.
    pool_->parallel_for(nodes_.size() + candidates.size(), [&](std::size_t i) {
      if (i < nodes_.size()) {
        probe_usage(i);
      } else {
        probe_match(i - nodes_.size());
      }
    });
  } else {
    for (std::size_t i = 0; i < nodes_.size(); ++i) probe_usage(i);
    for (std::size_t i = 0; i < candidates.size(); ++i) probe_match(i);
  }
  return round;
}

}  // namespace sigma

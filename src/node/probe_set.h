// In-process implementation of the scatter-gather probe plane: answers a
// probe round by calling the nodes' NodeProbe virtuals directly. With a
// ThreadPool the per-node queries fan out across worker threads (useful
// when the probe views are themselves RPC stubs, or on very wide
// clusters); without one they run sequentially in the caller's thread —
// the exact call sequence of the pre-probe-plane routers, kept as the
// equivalence baseline.
#pragma once

#include <span>

#include "common/thread_pool.h"
#include "node/node_probe.h"

namespace sigma {

class DirectProbeSet final : public ProbeSet {
 public:
  /// `nodes` (and `pool`, when given) must outlive the set. The span is
  /// referenced, not copied.
  explicit DirectProbeSet(std::span<const NodeProbe* const> nodes,
                          ThreadPool* pool = nullptr)
      : nodes_(nodes), pool_(pool) {}

  std::size_t size() const override { return nodes_.size(); }

  ProbeRound gather(ProbeKind kind, std::span<const NodeId> candidates,
                    const std::vector<Fingerprint>& fps) const override;

 private:
  std::span<const NodeProbe* const> nodes_;
  ThreadPool* pool_;
};

}  // namespace sigma

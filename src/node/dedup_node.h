// A deduplication server node (paper Sections 3.1 and 3.3).
//
// The node owns the four intra-node structures and implements the lookup
// flow of Section 3.3 for every routed super-chunk:
//
//   1. look the super-chunk's handprint up in the *similarity index*;
//   2. prefetch the metadata sections of all matched containers into the
//      *chunk-fingerprint cache* (container-granularity disk reads);
//   3. test every chunk fingerprint against the cache; cache misses fall
//      back to the metered on-disk *chunk index* (exact backstop) — or are
//      declared unique when the node runs in approximate,
//      similarity-index-only mode (the Fig. 5b configuration);
//   4. append unique chunks to the stream's open container in the
//      *container store*, and
//   5. publish the super-chunk's handprint in the similarity index.
//
// It also answers the two remote probes used by routing schemes:
// resemblance counts over handprints (Sigma-Dedupe, Algorithm 1 step 2)
// and sampled chunk-fingerprint match counts (EMC stateful routing).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "chunking/super_chunk.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "node/node_probe.h"
#include "storage/backend.h"
#include "storage/bloom_filter.h"
#include "storage/chunk_index.h"
#include "storage/container_store.h"
#include "storage/fingerprint_cache.h"
#include "storage/similarity_index.h"

namespace sigma {

struct DedupNodeConfig {
  /// Open-container seal threshold.
  std::uint64_t container_capacity_bytes = 4ull << 20;
  /// Chunk-fingerprint cache capacity, in containers.
  std::size_t cache_capacity_containers = 128;
  /// Lock stripes in the similarity index (Fig. 4b tunable).
  std::size_t similarity_index_locks = 1024;
  /// Handprint size k (paper default 8).
  std::size_t handprint_size = 8;
  /// Exact mode keeps the metered on-disk chunk index as a backstop after
  /// cache misses. Approximate mode (false) relies on the similarity
  /// index + cache only — the configuration studied in Fig. 5b.
  bool use_disk_index = true;
  /// Prefetch a container's fingerprints on a disk-index hit as well
  /// (DDFS-style locality-preserved caching).
  bool prefetch_on_disk_hit = true;
  /// Disable to ablate the similarity index's prefetch role: handprints
  /// are still published (for routing probes) but cache prefetch is
  /// driven only by disk-index hits, i.e. plain DDFS-style caching.
  bool use_similarity_prefetch = true;
  /// DDFS-style Bloom summary vector in front of the on-disk chunk index:
  /// a negative answer proves a chunk new and skips the disk lookup.
  bool use_bloom_filter = true;
  /// Bloom sizing (8 bits/entry at this many expected unique chunks).
  std::uint64_t bloom_expected_chunks = 1ull << 22;
};

/// Per-super-chunk dedup outcome and I/O accounting.
struct SuperChunkWriteResult {
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t unique_chunks = 0;
  std::uint64_t duplicate_bytes = 0;
  std::uint64_t unique_bytes = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t disk_index_lookups = 0;
  std::uint64_t disk_lookups_avoided_by_bloom = 0;
  std::uint64_t container_prefetches = 0;
};

/// Outcome of one rebuild_indexes() recovery pass.
struct RecoveryReport {
  /// Sealed containers whose blobs validated and were re-indexed.
  std::size_t containers_recovered = 0;
  /// Container blobs present but refused (truncated, corrupt, id
  /// mismatch). Their chunks are not indexed — a bad container is skipped
  /// whole, never partially.
  std::size_t containers_skipped = 0;
  /// Metadata sidecars rewritten because they were missing or corrupt.
  std::size_t sidecars_repaired = 0;
  std::uint64_t chunks_recovered = 0;
  std::uint64_t bytes_recovered = 0;
};

/// Cumulative node statistics.
struct DedupNodeStats {
  std::uint64_t logical_bytes = 0;
  std::uint64_t physical_bytes = 0;
  std::uint64_t super_chunks = 0;
  std::uint64_t duplicate_chunks = 0;
  std::uint64_t unique_chunks = 0;
  std::uint64_t disk_index_lookups = 0;
  std::uint64_t disk_lookups_avoided_by_bloom = 0;
  std::uint64_t container_prefetches = 0;

  double dedup_ratio() const {
    return physical_bytes == 0
               ? 1.0
               : static_cast<double>(logical_bytes) /
                     static_cast<double>(physical_bytes);
  }
};

class DedupNode : public NodeProbe {
 public:
  /// Provides payload bytes for the i-th chunk of the super-chunk being
  /// written; absent in trace-driven (metadata-only) operation.
  using PayloadProvider = std::function<ByteView(std::size_t chunk_index)>;

  /// Creates a node with its own in-memory backend.
  DedupNode(NodeId id, const DedupNodeConfig& config);

  /// Creates a node over a caller-supplied backend (e.g. FileBackend).
  DedupNode(NodeId id, const DedupNodeConfig& config,
            std::unique_ptr<StorageBackend> backend);

  NodeId id() const { return id_; }

  // ---- Remote probes (used by routers; message costs are accounted by
  //      the cluster layer, not here) -------------------------------------

  /// Algorithm 1 step 2: how many of these representative fingerprints are
  /// present in this node's similarity index?
  std::size_t resemblance_count(const Handprint& handprint) const override;

  /// EMC-stateful probe: how many of these (sampled) chunk fingerprints
  /// does this node already store?
  std::size_t chunk_match_count(
      const std::vector<Fingerprint>& fps) const override;

  /// Physical capacity used (for the load-balance discount).
  std::uint64_t stored_bytes() const override;

  /// Batched duplicate test: for each fingerprint, is the chunk already
  /// stored (exact chunk index)? Advisory for the wire protocol — the
  /// client sends payloads only for chunks reported absent; the store path
  /// re-checks, so a chunk stored concurrently is still deduplicated.
  std::vector<bool> test_duplicates(const std::vector<Fingerprint>& fps) const;

  // ---- Backup path ------------------------------------------------------

  /// Deduplicate and store one routed super-chunk. `payloads`, when
  /// provided, supplies the bytes of each chunk (only unique chunks are
  /// materialized).
  SuperChunkWriteResult write_super_chunk(StreamId stream,
                                          const SuperChunk& super_chunk,
                                          const PayloadProvider& payloads = {});

  /// Seal open containers (end of backup session).
  void flush();

  /// Crash recovery: rebuild the chunk index, similarity index and Bloom
  /// filter from the sealed containers in the backend (containers are
  /// self-describing, so the indexes are soft state). Each recovered
  /// container contributes its chunk locations to the chunk index and its
  /// k smallest fingerprints (the container's locality unit handprint) to
  /// the similarity index.
  ///
  /// Container blobs are fully validated (wire-codec bounds checks,
  /// structural invariants, checksum) before any of their chunks are
  /// indexed; a blob that fails validation is counted in
  /// RecoveryReport::containers_skipped and contributes nothing — no
  /// crash, no silent partial index. Missing or corrupt metadata sidecars
  /// of valid containers are regenerated from the container blob.
  /// Returns the number of containers recovered; the full breakdown is
  /// available from last_recovery().
  std::size_t rebuild_indexes();

  /// Breakdown of the most recent rebuild_indexes() pass.
  const RecoveryReport& last_recovery() const { return recovery_; }

  // ---- Restore path -----------------------------------------------------

  /// Fetch a stored chunk's payload by fingerprint. Requires exact mode
  /// and payload materialization.
  std::optional<Buffer> read_chunk(const Fingerprint& fp) const;

  // ---- Introspection ----------------------------------------------------

  DedupNodeStats stats() const;
  const BloomFilter& bloom_filter() const { return bloom_; }
  const SimilarityIndex& similarity_index() const { return similarity_index_; }
  const FingerprintCache& fingerprint_cache() const { return cache_; }
  const ChunkIndex& chunk_index() const { return chunk_index_; }
  const ContainerStore& container_store() const { return containers_; }
  const StorageBackend& backend() const { return *backend_; }
  const DedupNodeConfig& config() const { return config_; }

 private:
  NodeId id_;
  DedupNodeConfig config_;
  std::unique_ptr<StorageBackend> backend_;
  ContainerStore containers_;
  SimilarityIndex similarity_index_;
  FingerprintCache cache_;
  ChunkIndex chunk_index_;
  BloomFilter bloom_ SIGMA_GUARDED_BY(bloom_mu_);
  mutable Mutex bloom_mu_{LockRank::kBloomFilter};
  // Written only by rebuild_indexes(), which runs before the node serves
  // traffic (single-threaded startup) — hence unguarded.
  RecoveryReport recovery_;

  mutable Mutex stats_mu_{LockRank::kNodeStats};
  DedupNodeStats stats_ SIGMA_GUARDED_BY(stats_mu_);
};

}  // namespace sigma

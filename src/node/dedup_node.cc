#include "node/dedup_node.h"

#include <unordered_map>

namespace sigma {

DedupNode::DedupNode(NodeId id, const DedupNodeConfig& config)
    : DedupNode(id, config, std::make_unique<MemoryBackend>()) {}

DedupNode::DedupNode(NodeId id, const DedupNodeConfig& config,
                     std::unique_ptr<StorageBackend> backend)
    : id_(id),
      config_(config),
      backend_(std::move(backend)),
      containers_(*backend_, config.container_capacity_bytes),
      similarity_index_(config.similarity_index_locks),
      cache_(config.cache_capacity_containers),
      bloom_(config.bloom_expected_chunks) {}

std::size_t DedupNode::resemblance_count(const Handprint& handprint) const {
  return similarity_index_.count_matches(handprint);
}

std::size_t DedupNode::chunk_match_count(
    const std::vector<Fingerprint>& fps) const {
  std::size_t count = 0;
  for (const auto& fp : fps) {
    if (chunk_index_.peek(fp)) ++count;
  }
  return count;
}

std::uint64_t DedupNode::stored_bytes() const {
  return containers_.stored_bytes();
}

std::vector<bool> DedupNode::test_duplicates(
    const std::vector<Fingerprint>& fps) const {
  std::vector<bool> present(fps.size(), false);
  for (std::size_t i = 0; i < fps.size(); ++i) {
    present[i] = chunk_index_.peek(fps[i]).has_value();
  }
  return present;
}

SuperChunkWriteResult DedupNode::write_super_chunk(
    StreamId stream, const SuperChunk& super_chunk,
    const PayloadProvider& payloads) {
  SuperChunkWriteResult result;

  // Step 1+2: similarity-index lookup and container prefetch.
  const Handprint handprint =
      compute_handprint(super_chunk.chunks, config_.handprint_size);
  if (config_.use_similarity_prefetch) {
    for (ContainerId cid : similarity_index_.match_containers(handprint)) {
      const bool cached = cache_.contains_container(cid);
      // Sealed containers are immutable, so a cached copy stays valid; an
      // open container's cached fingerprint list goes stale as the
      // container grows and must be refreshed.
      if (!cached || containers_.is_open(cid)) {
        cache_.insert(cid, containers_.read_metadata(cid));
        if (!cached) ++result.container_prefetches;
      }
    }
  }

  // Step 3+4: per-chunk duplicate test, unique-chunk store.
  // Chunks repeated *within* this super-chunk must dedupe against each
  // other too, so track locations assigned during this call.
  std::unordered_map<Fingerprint, ContainerId> local;
  local.reserve(super_chunk.chunks.size());
  std::unordered_map<Fingerprint, ContainerId> rfp_location;

  for (std::size_t i = 0; i < super_chunk.chunks.size(); ++i) {
    const ChunkRecord& chunk = super_chunk.chunks[i];
    std::optional<ContainerId> home;

    if (auto it = local.find(chunk.fp); it != local.end()) {
      home = it->second;
    } else if (auto cached = cache_.lookup(chunk.fp)) {
      ++result.cache_hits;
      home = *cached;
    } else if (config_.use_disk_index) {
      // DDFS-style summary vector: a negative Bloom answer proves the
      // chunk new without touching the on-disk index.
      bool maybe_present = true;
      if (config_.use_bloom_filter) {
        MutexLock lock(bloom_mu_);
        maybe_present = bloom_.may_contain(chunk.fp);
      }
      if (!maybe_present) {
        ++result.disk_lookups_avoided_by_bloom;
      } else {
        ++result.disk_index_lookups;
        if (auto loc = chunk_index_.lookup(chunk.fp)) {
          home = loc->container;
          if (config_.prefetch_on_disk_hit &&
              !cache_.contains_container(loc->container)) {
            cache_.insert(loc->container,
                          containers_.read_metadata(loc->container));
            ++result.container_prefetches;
          }
        }
      }
    }

    if (home) {
      ++result.duplicate_chunks;
      result.duplicate_bytes += chunk.size;
    } else {
      ChunkLocation loc =
          payloads ? containers_.append(stream, chunk.fp, payloads(i))
                   : containers_.append_meta(stream, chunk.fp, chunk.size);
      if (config_.use_disk_index) {
        chunk_index_.insert(chunk.fp, loc);
        if (config_.use_bloom_filter) {
          MutexLock lock(bloom_mu_);
          bloom_.insert(chunk.fp);
        }
      }
      home = loc.container;
      ++result.unique_chunks;
      result.unique_bytes += chunk.size;
    }
    local[chunk.fp] = *home;
    rfp_location[chunk.fp] = *home;
  }

  // Step 5: publish this super-chunk's handprint so future resemblance
  // probes and prefetches can find it.
  for (const auto& rfp : handprint) {
    similarity_index_.put(rfp, rfp_location.at(rfp));
  }

  {
    MutexLock lock(stats_mu_);
    stats_.logical_bytes += result.duplicate_bytes + result.unique_bytes;
    stats_.physical_bytes += result.unique_bytes;
    stats_.super_chunks += 1;
    stats_.duplicate_chunks += result.duplicate_chunks;
    stats_.unique_chunks += result.unique_chunks;
    stats_.disk_index_lookups += result.disk_index_lookups;
    stats_.disk_lookups_avoided_by_bloom +=
        result.disk_lookups_avoided_by_bloom;
    stats_.container_prefetches += result.container_prefetches;
  }
  return result;
}

void DedupNode::flush() { containers_.flush(); }

std::size_t DedupNode::rebuild_indexes() {
  RecoveryReport report;
  std::optional<ContainerId> max_cid;
  for (const std::string& key : backend_->keys()) {
    // Sealed containers persist as "container-<id>" blobs plus a
    // "container-<id>.meta" sidecar; recovery is driven by the container
    // blobs (the sidecar is a read optimization, regenerated on demand).
    // Foreign keys — sidecars, the manifest, stray files in a shared
    // directory — are simply not containers and are ignored.
    const auto cid = ContainerStore::parse_container_key(key);
    if (!cid) continue;
    // Every container id present on disk — recovered OR refused — fences
    // off the id space: new containers must never overwrite an existing
    // blob, least of all a damaged one an operator might still salvage.
    max_cid = std::max(max_cid.value_or(*cid), *cid);
    const auto blob = backend_->get(key);
    if (!blob) continue;

    // Validate the whole blob before indexing anything from it: a
    // truncated, bit-flipped or misnamed container is refused whole.
    std::optional<Container> container;
    try {
      container =
          Container::deserialize(ByteView{blob->data(), blob->size()});
      if (container->id() != *cid) {
        throw std::runtime_error("container id does not match key");
      }
    } catch (const std::exception&) {
      ++report.containers_skipped;
      continue;
    }

    const auto& metadata = container->metadata();
    std::vector<ChunkRecord> records;
    records.reserve(metadata.size());
    for (std::uint32_t i = 0; i < metadata.size(); ++i) {
      const ChunkMeta& m = metadata[i];
      chunk_index_.insert(m.fp, {*cid, i});
      {
        MutexLock lock(bloom_mu_);
        bloom_.insert(m.fp);
      }
      records.push_back({m.fp, m.length});
      report.bytes_recovered += m.length;
    }
    report.chunks_recovered += metadata.size();
    // Republish the container's locality unit in the similarity index so
    // post-recovery routing probes and prefetches keep working.
    for (const auto& rfp :
         compute_handprint(records, config_.handprint_size)) {
      similarity_index_.put(rfp, *cid);
    }
    // Repair the metadata sidecar if it is missing or does not decode to
    // this container's metadata (read_metadata depends on it).
    const std::string meta_key = ContainerStore::metadata_key(*cid);
    bool sidecar_ok = false;
    try {
      if (const auto meta_blob = backend_->get(meta_key)) {
        sidecar_ok = Container::deserialize_metadata(ByteView{
                         meta_blob->data(), meta_blob->size()}) == metadata;
      }
    } catch (const std::exception&) {
      sidecar_ok = false;
    }
    if (!sidecar_ok) {
      const Buffer fixed = container->serialize_metadata();
      backend_->put(meta_key, ByteView{fixed.data(), fixed.size()});
      ++report.sidecars_repaired;
    }
    ++report.containers_recovered;
  }
  if (max_cid) {
    containers_.restore_state(*max_cid + 1, report.bytes_recovered);
  }
  if (report.bytes_recovered > 0) {
    MutexLock lock(stats_mu_);
    stats_.physical_bytes += report.bytes_recovered;
  }
  recovery_ = report;
  return report.containers_recovered;
}

std::optional<Buffer> DedupNode::read_chunk(const Fingerprint& fp) const {
  auto loc = chunk_index_.peek(fp);
  if (!loc) return std::nullopt;
  return containers_.read_chunk(*loc);
}

DedupNodeStats DedupNode::stats() const {
  MutexLock lock(stats_mu_);
  return stats_;
}

}  // namespace sigma

// Client stub for the fleet registry (see registry_server.h): owns a
// private transport dialing the registry's well-known endpoint, speaks
// the control-plane ops, and runs the heartbeat that keeps the granted
// lease alive.
//
// Two roles share this class:
//
//   * a node daemon calls register_node() with its advertised address and
//     endpoint range (refused up front on overlap — the id-collision bug
//     class dies here, at registration, not at runtime route conflicts);
//   * a backup client calls lease_endpoints() and wires its Cluster from
//     the returned endpoint base + fleet view, subscribing to pushed
//     kFleetUpdate membership changes.
//
// Degraded mode: if the registry dies, heartbeats fail — the client logs
// ONE warning per transition, keeps its lease state (the data plane is
// untouched: daemons keep serving, clients keep their cached view) and
// keeps probing at the heartbeat cadence. A daemon whose heartbeat is
// answered with "unknown lease" (registry restarted, or the lease
// expired during a partition) re-registers automatically.
//
// Bootstrap endpoint ids: this transport never listens, but its outgoing
// endpoint id must not collide with another client's in the registry's
// learned routes *before* any lease exists. It therefore self-assigns a
// random id in the reserved kRegistryBootstrapBase band (collision odds
// ~2^-30 per pair; a collision degrades to one refused message, never to
// cross-delivery).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/rpc.h"
#include "net/tcp/tcp_transport.h"
#include "obs/metrics.h"
#include "service/wire_protocol.h"

namespace sigma::ctrl {

struct RegistryClientConfig {
  /// Where the registry_server listens.
  net::TcpAddress registry;

  /// Per-RPC timeout against the registry.
  std::uint32_t rpc_timeout_ms = 5000;

  /// Heartbeat cadence; 0 = a third of the granted lease TTL.
  std::uint32_t heartbeat_interval_ms = 0;

  /// Event-loop shards for the private transport (control traffic is
  /// tiny; one is plenty).
  std::uint32_t reactors = 1;

  /// Optional metrics plane (must outlive the client): registry_client.*
  /// heartbeat / failure / update counters.
  obs::Registry* metrics = nullptr;
};

class RegistryClient {
 public:
  /// Invoked (on a transport delivery thread, no locks held) for every
  /// pushed fleet view after lease_endpoints() subscribed.
  using UpdateCallback = std::function<void(const service::FleetView&)>;

  explicit RegistryClient(const RegistryClientConfig& config);

  /// Leaves (best effort) and stops the heartbeat.
  ~RegistryClient();

  RegistryClient(const RegistryClient&) = delete;
  RegistryClient& operator=(const RegistryClient&) = delete;

  /// Daemon role: announce `advertise` as the dial address for the
  /// endpoint range [first_endpoint, first_endpoint + num_endpoints).
  /// Starts the heartbeat on success. Throws net::RpcError if the
  /// registry refuses (range overlap) or is unreachable.
  service::LeaseGrant register_node(const net::TcpAddress& advertise,
                                    net::EndpointId first_endpoint,
                                    std::uint32_t num_endpoints)
      SIGMA_EXCLUDES(mu_);

  /// Client role: lease `num_endpoints` ids. When `on_update` is given,
  /// subscribes to pushed membership changes. Starts the heartbeat.
  service::LeaseEndpointsReply lease_endpoints(std::uint32_t num_endpoints,
                                               UpdateCallback on_update = {})
      SIGMA_EXCLUDES(mu_);

  /// One-shot fleet view fetch (no lease needed — fleet CLIs use this).
  service::FleetView fetch_fleet();

  /// Release the lease cleanly and stop the heartbeat. Idempotent; a
  /// dead registry makes this a no-op (logged, not thrown).
  void leave() SIGMA_EXCLUDES(mu_);

  /// False while the registry is unreachable (heartbeats failing). The
  /// fleet keeps serving from cached state — this is the degraded-mode
  /// probe for operators and tests.
  bool healthy() const SIGMA_EXCLUDES(mu_);

  std::uint64_t lease_id() const SIGMA_EXCLUDES(mu_);
  std::uint32_t ttl_ms() const SIGMA_EXCLUDES(mu_);

  /// Pushed views received so far, and the latest one.
  std::uint64_t updates_received() const SIGMA_EXCLUDES(mu_);
  service::FleetView latest_view() const SIGMA_EXCLUDES(mu_);

 private:
  void start_heartbeat() SIGMA_EXCLUDES(mu_);
  void heartbeat_loop() SIGMA_EXCLUDES(mu_);
  void note_heartbeat_result(bool ok, const std::string& error)
      SIGMA_EXCLUDES(mu_);
  Buffer on_request(const net::Message& m) SIGMA_EXCLUDES(mu_);

  RegistryClientConfig config_;
  obs::Counter* m_heartbeats_ = nullptr;
  obs::Counter* m_heartbeat_failures_ = nullptr;
  obs::Counter* m_updates_ = nullptr;
  obs::Counter* m_reregisters_ = nullptr;

  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<net::RpcEndpoint> rpc_;

  mutable Mutex mu_{LockRank::kRegistryCtrl};
  CondVar cv_;
  bool stop_ SIGMA_GUARDED_BY(mu_) = false;
  bool healthy_ SIGMA_GUARDED_BY(mu_) = true;
  std::uint64_t lease_id_ SIGMA_GUARDED_BY(mu_) = 0;
  std::uint32_t ttl_ms_ SIGMA_GUARDED_BY(mu_) = 0;
  /// Daemon role's registration, kept for automatic re-register.
  bool is_node_ SIGMA_GUARDED_BY(mu_) = false;
  net::TcpAddress advertise_ SIGMA_GUARDED_BY(mu_);
  net::EndpointId first_endpoint_ SIGMA_GUARDED_BY(mu_) = 0;
  std::uint32_t num_endpoints_ SIGMA_GUARDED_BY(mu_) = 0;
  /// Copied out under mu_ and invoked unlocked (the callback may call
  /// back into this client).
  UpdateCallback on_update_ SIGMA_GUARDED_BY(mu_);
  service::FleetView latest_view_ SIGMA_GUARDED_BY(mu_);
  std::uint64_t updates_received_ SIGMA_GUARDED_BY(mu_) = 0;

  std::thread heartbeat_;
};

}  // namespace sigma::ctrl

// Fleet registry: the control-plane daemon that kills the id-collision
// bug class at the root. Instead of wiring the fleet by hand — a static
// node-map string per Cluster, client endpoint bases guessed and merely
// refused on collision at runtime — daemons REGISTER their endpoint range
// here and clients LEASE one:
//
//   node_server --registry H:P   ->  kRegisterNode {host, port, range}
//                                    (overlapping ranges refused up front)
//   Cluster    {--registry H:P}  ->  kLeaseEndpoints {count, subscribe}
//                                    -> granted base + the fleet view
//   both                         ->  kRegistryHeartbeat every ttl/3
//                                    (a lapsed lease expires: the range is
//                                    freed and the fleet view drops it)
//
// Membership changes — a daemon joining, a lease expiring, a clean
// kRegistryLeave — bump the view version and are PUSHED (kFleetUpdate) to
// every subscribed client over the learned return route its lease request
// established. Heartbeats keep that route fresh (the default TTL's
// heartbeat cadence is far below the transport's route_stale_ms).
//
// The registry speaks the existing framed wire protocol on the well-known
// endpoint kRegistryEndpoint, so the protocol-version handshake, metrics
// scrape (kStatsSnapshot answers with registry.* instruments) and all
// transport hardening apply unchanged. State is deliberately in-memory
// only: a restarted registry repopulates from daemon re-registration
// (heartbeat "unknown lease" -> re-register), and a *dead* registry
// degrades the fleet gracefully — leases stop being enforced, clients keep
// serving from their cached view and log the degradation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <thread>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/channel.h"
#include "net/message.h"
#include "net/tcp/tcp_transport.h"
#include "obs/metrics.h"
#include "service/wire_protocol.h"

namespace sigma::ctrl {

struct RegistryServerConfig {
  net::TcpAddress listen{"127.0.0.1", 0};

  /// Lease TTL granted to every registrant. Holders heartbeat at ttl/3;
  /// a lease with no heartbeat for a full TTL expires. Keep well below
  /// the transport's route_stale_ms, or the push route to an idle
  /// subscriber would be swept before its next heartbeat refreshes it.
  std::uint32_t lease_ttl_ms = 5000;

  /// Event-loop shards for the registry's transport (0 = auto).
  std::uint32_t reactors = 1;

  std::size_t max_body_bytes = 4u << 20;
};

class RegistryServer {
 public:
  /// Binds the listener and starts serving. Throws SocketError if the
  /// listen address cannot be bound.
  explicit RegistryServer(const RegistryServerConfig& config);

  /// Stops the worker and the transport. Leases are not persisted — a
  /// restart starts empty and daemons re-register via their heartbeat's
  /// "unknown lease" error.
  ~RegistryServer();

  RegistryServer(const RegistryServer&) = delete;
  RegistryServer& operator=(const RegistryServer&) = delete;

  /// Actual listening port (resolves port 0).
  std::uint16_t port() const { return transport_->listen_port(); }

  /// The current fleet view (tests and CLIs; peers use kFleetFetch).
  service::FleetView fleet_view() const SIGMA_EXCLUDES(mu_);

  std::size_t node_lease_count() const SIGMA_EXCLUDES(mu_);
  std::size_t client_lease_count() const SIGMA_EXCLUDES(mu_);

  /// Fleet-view pushes acknowledged by subscribers (test ordering hook).
  std::uint64_t push_acks() const SIGMA_EXCLUDES(mu_);

  obs::MetricsSnapshot metrics_snapshot() const;

 private:
  struct Lease {
    std::uint64_t id = 0;
    bool is_node = false;
    /// Node leases: the daemon's advertised dial address.
    net::TcpAddress address;
    net::EndpointId base = 0;
    std::uint32_t count = 0;
    std::chrono::steady_clock::time_point expires_at;
    /// Client leases: the endpoint to push kFleetUpdate to (0 = none).
    net::EndpointId subscriber = 0;
  };

  void serve();
  void handle(const net::Message& request) SIGMA_EXCLUDES(mu_);
  Buffer handle_register_node(const net::Message& request)
      SIGMA_REQUIRES(mu_);
  Buffer handle_lease_endpoints(const net::Message& request)
      SIGMA_REQUIRES(mu_);

  /// Drop leases past their TTL; pushes an updated view if a node left.
  void expire_due() SIGMA_EXCLUDES(mu_);

  /// Rebuild the view from the node leases and bump its version.
  void rebuild_view() SIGMA_REQUIRES(mu_);

  /// Push the current view to every subscribed client lease.
  void push_view() SIGMA_EXCLUDES(mu_);

  std::chrono::steady_clock::time_point next_expiry() const
      SIGMA_EXCLUDES(mu_);

  RegistryServerConfig config_;
  obs::Registry registry_;
  obs::Counter* m_registrations_;
  obs::Counter* m_register_refusals_;
  obs::Counter* m_leases_;
  obs::Counter* m_heartbeats_;
  obs::Counter* m_unknown_leases_;
  obs::Counter* m_lease_expiries_;
  obs::Counter* m_leaves_;
  obs::Counter* m_view_pushes_;
  obs::Gauge* m_nodes_;
  obs::Gauge* m_clients_;

  std::unique_ptr<net::TcpTransport> transport_;
  net::EndpointId endpoint_ = 0;

  /// Transport delivery threads push everything here; ONE worker thread
  /// drains, so the lease table sees strictly serialized mutations and
  /// expiry runs between messages (pop_until the next lease deadline).
  net::Channel<net::Message> inbox_;

  mutable Mutex mu_{LockRank::kRegistryCtrl};
  std::map<std::uint64_t, Lease> leases_ SIGMA_GUARDED_BY(mu_);
  std::uint64_t next_lease_id_ SIGMA_GUARDED_BY(mu_) = 1;
  service::FleetView view_ SIGMA_GUARDED_BY(mu_);
  std::uint64_t next_push_correlation_ SIGMA_GUARDED_BY(mu_) = 1;
  std::uint64_t push_acks_ SIGMA_GUARDED_BY(mu_) = 0;

  std::thread worker_;
};

}  // namespace sigma::ctrl

#include "ctrl/registry_server.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/logging.h"
#include "obs/metrics_wire.h"

namespace sigma::ctrl {
namespace {

std::string range_string(net::EndpointId base, std::uint32_t count) {
  return "[" + std::to_string(base) + ".." +
         std::to_string(static_cast<std::uint64_t>(base) + count - 1) + "]";
}

bool ranges_overlap(net::EndpointId a, std::uint32_t an, net::EndpointId b,
                    std::uint32_t bn) {
  const std::uint64_t a0 = a, a1 = a0 + an;
  const std::uint64_t b0 = b, b1 = b0 + bn;
  return a0 < b1 && b0 < a1;
}

}  // namespace

RegistryServer::RegistryServer(const RegistryServerConfig& config)
    : config_(config) {
  m_registrations_ = &registry_.counter("registry.registrations");
  m_register_refusals_ = &registry_.counter("registry.register_refusals");
  m_leases_ = &registry_.counter("registry.client_leases");
  m_heartbeats_ = &registry_.counter("registry.heartbeats");
  m_unknown_leases_ = &registry_.counter("registry.unknown_leases");
  m_lease_expiries_ = &registry_.counter("registry.lease_expiries");
  m_leaves_ = &registry_.counter("registry.leaves");
  m_view_pushes_ = &registry_.counter("registry.view_pushes");
  m_nodes_ = &registry_.gauge("registry.nodes");
  m_clients_ = &registry_.gauge("registry.clients");

  net::TcpTransportConfig tcp;
  tcp.listen = config_.listen;
  tcp.endpoint_base = net::kRegistryEndpoint;
  tcp.reactors = config_.reactors;
  tcp.max_body_bytes = config_.max_body_bytes;
  tcp.metrics = &registry_;
  transport_ = std::make_unique<net::TcpTransport>(std::move(tcp));
  endpoint_ = transport_->register_endpoint(
      [this](net::Message&& m) { inbox_.push(std::move(m)); });
  worker_ = std::thread([this] { serve(); });
}

RegistryServer::~RegistryServer() {
  // Stop deliveries first (blocks until in-flight handler calls return),
  // so nothing touches the inbox once the worker is gone.
  transport_->unregister_endpoint(endpoint_);
  inbox_.close();
  worker_.join();
}

service::FleetView RegistryServer::fleet_view() const {
  MutexLock lock(mu_);
  return view_;
}

std::size_t RegistryServer::node_lease_count() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, lease] : leases_) n += lease.is_node ? 1 : 0;
  return n;
}

std::size_t RegistryServer::client_lease_count() const {
  MutexLock lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, lease] : leases_) n += lease.is_node ? 0 : 1;
  return n;
}

std::uint64_t RegistryServer::push_acks() const {
  MutexLock lock(mu_);
  return push_acks_;
}

obs::MetricsSnapshot RegistryServer::metrics_snapshot() const {
  obs::MetricsSnapshot snap = registry_.snapshot();
  const net::NetStats net = transport_->stats();
  snap.add_counter("net.messages_sent", net.messages_sent);
  snap.add_counter("net.bytes_sent", net.bytes_sent);
  snap.add_counter("net.requests", net.requests);
  snap.add_counter("net.responses", net.responses);
  snap.add_counter("net.errors", net.errors);
  const net::TcpTransportStats tcp = transport_->tcp_stats();
  snap.add_counter("tcp.connections_accepted", tcp.connections_accepted);
  snap.add_counter("tcp.frames_received", tcp.frames_received);
  snap.add_counter("tcp.route_conflicts", tcp.route_conflicts);
  snap.add_counter("tcp.route_takeovers", tcp.route_takeovers);
  snap.add_counter("tcp.route_expired", tcp.route_expired);
  return snap;
}

void RegistryServer::serve() {
  for (;;) {
    std::optional<net::Message> m = inbox_.pop_until(next_expiry());
    if (!m) {
      if (inbox_.closed()) return;
      expire_due();
      continue;
    }
    if (m->kind != net::MessageKind::kRequest) {
      // Response (or error) to a fleet push — count the acknowledgement;
      // an error here means the subscriber is gone, which its lease
      // expiry will surface soon enough.
      if (m->type == net::MessageType::kFleetUpdate &&
          m->kind == net::MessageKind::kResponse) {
        MutexLock lock(mu_);
        ++push_acks_;
      }
    } else {
      handle(*m);
    }
    expire_due();
  }
}

std::chrono::steady_clock::time_point RegistryServer::next_expiry() const {
  MutexLock lock(mu_);
  auto next = std::chrono::steady_clock::now() +
              std::chrono::milliseconds(config_.lease_ttl_ms);
  for (const auto& [id, lease] : leases_) {
    next = std::min(next, lease.expires_at);
  }
  return next;
}

void RegistryServer::handle(const net::Message& request) {
  using net::Message;
  using net::MessageType;
  bool membership_changed = false;
  Message reply;
  try {
    switch (request.type) {
      case MessageType::kRegisterNode: {
        MutexLock lock(mu_);
        const std::uint64_t version_before = view_.version;
        Buffer body = handle_register_node(request);
        membership_changed = view_.version != version_before;
        reply = Message::response_to(request, std::move(body));
        break;
      }
      case MessageType::kLeaseEndpoints: {
        MutexLock lock(mu_);
        reply = Message::response_to(request, handle_lease_endpoints(request));
        break;
      }
      case MessageType::kRegistryHeartbeat: {
        const std::uint64_t id = service::decode_u64(
            ByteView{request.body.data(), request.body.size()});
        MutexLock lock(mu_);
        auto it = leases_.find(id);
        if (it == leases_.end()) {
          m_unknown_leases_->inc();
          throw std::runtime_error(
              "registry: unknown lease " + std::to_string(id) +
              " (expired, or the registry restarted) — re-register");
        }
        it->second.expires_at =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(config_.lease_ttl_ms);
        m_heartbeats_->inc();
        reply = Message::response_to(request, Buffer{});
        break;
      }
      case MessageType::kRegistryLeave: {
        const std::uint64_t id = service::decode_u64(
            ByteView{request.body.data(), request.body.size()});
        MutexLock lock(mu_);
        auto it = leases_.find(id);
        if (it != leases_.end()) {
          const bool was_node = it->second.is_node;
          leases_.erase(it);
          m_leaves_->inc();
          if (was_node) {
            rebuild_view();
            membership_changed = true;
          } else {
            m_clients_->sub(1);
          }
        }
        // Leaving twice (or after expiry) is not an error: the desired
        // state — no lease — already holds.
        reply = Message::response_to(request, Buffer{});
        break;
      }
      case MessageType::kFleetFetch: {
        MutexLock lock(mu_);
        reply = Message::response_to(request, service::encode_fleet_view(view_));
        break;
      }
      case MessageType::kStatsSnapshot: {
        reply = Message::response_to(
            request, obs::encode_metrics_snapshot(metrics_snapshot()));
        break;
      }
      default:
        throw std::runtime_error(
            "registry: unsupported operation " +
            std::string(net::to_string(request.type)) +
            " (this endpoint only serves control-plane ops)");
    }
  } catch (const std::exception& e) {
    transport_->send(Message::error_to(request, e.what()));
    return;
  }
  transport_->send(std::move(reply));
  if (membership_changed) push_view();
}

Buffer RegistryServer::handle_register_node(const net::Message& request) {
  const auto req = service::decode_register_node_request(
      ByteView{request.body.data(), request.body.size()});
  if (req.num_endpoints == 0) {
    m_register_refusals_->inc();
    throw std::runtime_error("registry: daemon registered an empty range");
  }
  if (req.first_endpoint <= net::kRegistryEndpoint) {
    m_register_refusals_->inc();
    throw std::runtime_error(
        "registry: daemon range " +
        range_string(req.first_endpoint, req.num_endpoints) +
        " overlaps the registry's own endpoint id " +
        std::to_string(net::kRegistryEndpoint));
  }
  if (static_cast<std::uint64_t>(req.first_endpoint) + req.num_endpoints >
      net::kClientEndpointBase) {
    m_register_refusals_->inc();
    throw std::runtime_error(
        "registry: daemon range " +
        range_string(req.first_endpoint, req.num_endpoints) +
        " reaches the client endpoint range (base " +
        std::to_string(net::kClientEndpointBase) + ")");
  }
  const net::TcpAddress address{req.host, req.port};
  bool replaced = false;
  for (auto it = leases_.begin(); it != leases_.end(); ++it) {
    const Lease& held = it->second;
    if (!held.is_node) continue;
    if (held.address == address && held.base == req.first_endpoint &&
        held.count == req.num_endpoints) {
      // The same daemon re-registering (restart, or a heartbeat that hit
      // a restarted registry): replace its lease. The view's content is
      // unchanged, so subscribers are not disturbed.
      leases_.erase(it);
      replaced = true;
      break;
    }
    if (ranges_overlap(held.base, held.count, req.first_endpoint,
                       req.num_endpoints)) {
      m_register_refusals_->inc();
      throw std::runtime_error(
          "registry: endpoint range " +
          range_string(req.first_endpoint, req.num_endpoints) +
          " overlaps " + range_string(held.base, held.count) +
          " held by daemon " + held.address.to_string());
    }
  }

  Lease lease;
  lease.id = next_lease_id_++;
  lease.is_node = true;
  lease.address = address;
  lease.base = req.first_endpoint;
  lease.count = req.num_endpoints;
  lease.expires_at = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(config_.lease_ttl_ms);
  leases_.emplace(lease.id, lease);
  m_registrations_->inc();
  if (!replaced) {
    rebuild_view();
    SIGMA_LOG_INFO << "registry: daemon " << address.to_string()
                   << " registered endpoints "
                   << range_string(lease.base, lease.count) << " (view v"
                   << view_.version << ", " << view_.nodes.size()
                   << " nodes)";
  }
  return service::encode_lease_grant({lease.id, config_.lease_ttl_ms});
}

Buffer RegistryServer::handle_lease_endpoints(const net::Message& request) {
  const auto req = service::decode_lease_endpoints_request(
      ByteView{request.body.data(), request.body.size()});
  if (req.num_endpoints == 0 || req.num_endpoints > 65536) {
    throw std::runtime_error(
        "registry: client endpoint lease must cover 1..65536 ids, asked "
        "for " +
        std::to_string(req.num_endpoints));
  }

  // First-fit from kClientEndpointBase: freed ranges are reused, and the
  // band below kRegistryBootstrapBase bounds the space. Client ranges can
  // never meet daemon ranges — registration refuses anything reaching
  // kClientEndpointBase.
  std::vector<std::pair<net::EndpointId, std::uint32_t>> held;
  for (const auto& [id, lease] : leases_) {
    if (!lease.is_node) held.emplace_back(lease.base, lease.count);
  }
  std::sort(held.begin(), held.end());
  std::uint64_t base = net::kClientEndpointBase;
  for (const auto& [b, n] : held) {
    if (base + req.num_endpoints <= b) break;
    base = std::max(base, static_cast<std::uint64_t>(b) + n);
  }
  if (base + req.num_endpoints > net::kRegistryBootstrapBase) {
    throw std::runtime_error("registry: client endpoint space exhausted");
  }

  Lease lease;
  lease.id = next_lease_id_++;
  lease.is_node = false;
  lease.base = static_cast<net::EndpointId>(base);
  lease.count = req.num_endpoints;
  lease.expires_at = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(config_.lease_ttl_ms);
  lease.subscriber = req.subscribe ? request.src : 0;
  leases_.emplace(lease.id, lease);
  m_leases_->inc();
  m_clients_->add(1);
  SIGMA_LOG_INFO << "registry: client leased endpoints "
                 << range_string(lease.base, lease.count)
                 << (lease.subscriber ? " (subscribed)" : "");

  service::LeaseEndpointsReply reply;
  reply.grant = {lease.id, config_.lease_ttl_ms};
  reply.endpoint_base = lease.base;
  reply.view = view_;
  return service::encode_lease_endpoints_reply(reply);
}

void RegistryServer::expire_due() {
  bool membership_changed = false;
  {
    MutexLock lock(mu_);
    const auto now = std::chrono::steady_clock::now();
    for (auto it = leases_.begin(); it != leases_.end();) {
      if (it->second.expires_at <= now) {
        m_lease_expiries_->inc();
        SIGMA_LOG_WARN << "registry: lease " << it->second.id << " ("
                       << (it->second.is_node
                               ? "daemon " + it->second.address.to_string()
                               : "client")
                       << ", endpoints "
                       << range_string(it->second.base, it->second.count)
                       << ") expired without a heartbeat";
        if (it->second.is_node) {
          membership_changed = true;
        } else {
          m_clients_->sub(1);
        }
        it = leases_.erase(it);
      } else {
        ++it;
      }
    }
    if (membership_changed) rebuild_view();
  }
  if (membership_changed) push_view();
}

void RegistryServer::rebuild_view() {
  view_.nodes.clear();
  std::int64_t node_leases = 0;
  for (const auto& [id, lease] : leases_) {
    if (!lease.is_node) continue;
    ++node_leases;
    for (std::uint32_t i = 0; i < lease.count; ++i) {
      view_.nodes.push_back({lease.address, lease.base + i});
    }
  }
  std::sort(view_.nodes.begin(), view_.nodes.end(),
            [](const net::TcpNodeAddress& a, const net::TcpNodeAddress& b) {
              return a.endpoint < b.endpoint;
            });
  ++view_.version;
  m_nodes_->set(node_leases);
}

void RegistryServer::push_view() {
  std::vector<net::Message> pushes;
  {
    MutexLock lock(mu_);
    const Buffer body = service::encode_fleet_view(view_);
    for (const auto& [id, lease] : leases_) {
      if (lease.is_node || lease.subscriber == 0) continue;
      net::Message m;
      m.type = net::MessageType::kFleetUpdate;
      m.kind = net::MessageKind::kRequest;
      m.correlation_id = next_push_correlation_++;
      m.src = endpoint_;
      m.dst = lease.subscriber;
      m.body = body;
      pushes.push_back(std::move(m));
    }
  }
  for (auto& m : pushes) {
    m_view_pushes_->inc();
    transport_->send(std::move(m));
  }
}

}  // namespace sigma::ctrl

#include "ctrl/registry_client.h"

#include <random>
#include <utility>

#include "common/logging.h"

namespace sigma::ctrl {
namespace {

/// Random endpoint id in the bootstrap band (see the header comment).
net::EndpointId random_bootstrap_base() {
  std::random_device rd;
  std::uniform_int_distribution<net::EndpointId> dist(
      net::kRegistryBootstrapBase, 0xFFFFFF00u);
  return dist(rd);
}

}  // namespace

RegistryClient::RegistryClient(const RegistryClientConfig& config)
    : config_(config) {
  if (config_.metrics) {
    m_heartbeats_ = &config_.metrics->counter("registry_client.heartbeats");
    m_heartbeat_failures_ =
        &config_.metrics->counter("registry_client.heartbeat_failures");
    m_updates_ = &config_.metrics->counter("registry_client.updates");
    m_reregisters_ =
        &config_.metrics->counter("registry_client.reregisters");
  }
  net::TcpTransportConfig tcp;
  tcp.remote_endpoints[net::kRegistryEndpoint] = config_.registry;
  tcp.endpoint_base = random_bootstrap_base();
  tcp.reactors = config_.reactors;
  transport_ = std::make_unique<net::TcpTransport>(std::move(tcp));
  rpc_ = std::make_unique<net::RpcEndpoint>(*transport_, config_.metrics);
  rpc_->set_request_handler(
      [this](const net::Message& m) { return on_request(m); });
}

RegistryClient::~RegistryClient() {
  try {
    leave();
  } catch (const std::exception& e) {
    SIGMA_LOG_WARN << "registry client: leave on shutdown failed: "
                   << e.what();
  }
}

service::LeaseGrant RegistryClient::register_node(
    const net::TcpAddress& advertise, net::EndpointId first_endpoint,
    std::uint32_t num_endpoints) {
  service::RegisterNodeRequest req;
  req.host = advertise.host;
  req.port = advertise.port;
  req.first_endpoint = first_endpoint;
  req.num_endpoints = num_endpoints;
  const Buffer reply = rpc_->call_sync(
      net::kRegistryEndpoint, net::MessageType::kRegisterNode,
      service::encode_register_node_request(req),
      std::chrono::milliseconds(config_.rpc_timeout_ms));
  const service::LeaseGrant grant =
      service::decode_lease_grant(ByteView{reply.data(), reply.size()});
  {
    MutexLock lock(mu_);
    lease_id_ = grant.lease_id;
    ttl_ms_ = grant.ttl_ms;
    is_node_ = true;
    advertise_ = advertise;
    first_endpoint_ = first_endpoint;
    num_endpoints_ = num_endpoints;
    healthy_ = true;
  }
  start_heartbeat();
  return grant;
}

service::LeaseEndpointsReply RegistryClient::lease_endpoints(
    std::uint32_t num_endpoints, UpdateCallback on_update) {
  {
    // Install before the RPC: a membership change racing the lease reply
    // must find the callback in place.
    MutexLock lock(mu_);
    on_update_ = std::move(on_update);
  }
  service::LeaseEndpointsRequest req;
  req.num_endpoints = num_endpoints;
  {
    MutexLock lock(mu_);
    req.subscribe = static_cast<bool>(on_update_);
  }
  const Buffer body = rpc_->call_sync(
      net::kRegistryEndpoint, net::MessageType::kLeaseEndpoints,
      service::encode_lease_endpoints_request(req),
      std::chrono::milliseconds(config_.rpc_timeout_ms));
  service::LeaseEndpointsReply reply =
      service::decode_lease_endpoints_reply(
          ByteView{body.data(), body.size()});
  {
    MutexLock lock(mu_);
    lease_id_ = reply.grant.lease_id;
    ttl_ms_ = reply.grant.ttl_ms;
    is_node_ = false;
    healthy_ = true;
    // A push may already have advanced past the lease-time view.
    if (latest_view_.version < reply.view.version) {
      latest_view_ = reply.view;
    }
  }
  start_heartbeat();
  return reply;
}

service::FleetView RegistryClient::fetch_fleet() {
  const Buffer body = rpc_->call_sync(
      net::kRegistryEndpoint, net::MessageType::kFleetFetch, Buffer{},
      std::chrono::milliseconds(config_.rpc_timeout_ms));
  return service::decode_fleet_view(ByteView{body.data(), body.size()});
}

void RegistryClient::leave() {
  std::uint64_t id = 0;
  {
    MutexLock lock(mu_);
    stop_ = true;
    std::swap(id, lease_id_);
  }
  cv_.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  if (id == 0) return;
  try {
    rpc_->call_sync(net::kRegistryEndpoint,
                    net::MessageType::kRegistryLeave, service::encode_u64(id),
                    std::chrono::milliseconds(config_.rpc_timeout_ms));
  } catch (const net::RpcError& e) {
    // A dead registry cannot un-lease us; its expiry sweep will.
    SIGMA_LOG_WARN << "registry client: clean leave failed (" << e.what()
                   << ") — the lease will expire on its own";
  }
}

bool RegistryClient::healthy() const {
  MutexLock lock(mu_);
  return healthy_;
}

std::uint64_t RegistryClient::lease_id() const {
  MutexLock lock(mu_);
  return lease_id_;
}

std::uint32_t RegistryClient::ttl_ms() const {
  MutexLock lock(mu_);
  return ttl_ms_;
}

std::uint64_t RegistryClient::updates_received() const {
  MutexLock lock(mu_);
  return updates_received_;
}

service::FleetView RegistryClient::latest_view() const {
  MutexLock lock(mu_);
  return latest_view_;
}

void RegistryClient::start_heartbeat() {
  if (heartbeat_.joinable()) return;  // re-register reuses the first thread
  heartbeat_ = std::thread([this] { heartbeat_loop(); });
}

void RegistryClient::heartbeat_loop() {
  for (;;) {
    std::uint64_t id = 0;
    std::uint32_t interval_ms = 0;
    {
      MutexLock lock(mu_);
      interval_ms = config_.heartbeat_interval_ms > 0
                        ? config_.heartbeat_interval_ms
                        : std::max<std::uint32_t>(ttl_ms_ / 3, 1);
      cv_.wait_for(mu_, std::chrono::milliseconds(interval_ms));
      if (stop_) return;
      id = lease_id_;
    }
    if (id == 0) continue;
    try {
      rpc_->call_sync(net::kRegistryEndpoint,
                      net::MessageType::kRegistryHeartbeat,
                      service::encode_u64(id),
                      std::chrono::milliseconds(config_.rpc_timeout_ms));
      if (m_heartbeats_) m_heartbeats_->inc();
      note_heartbeat_result(true, {});
    } catch (const net::RpcError& e) {
      if (m_heartbeat_failures_) m_heartbeat_failures_->inc();
      const std::string what = e.what();
      const bool unknown_lease =
          what.find("unknown lease") != std::string::npos;
      bool try_reregister = false;
      {
        MutexLock lock(mu_);
        try_reregister = unknown_lease && is_node_;
        if (unknown_lease && !is_node_) {
          // A client's lease is gone (partition outlived the TTL, or the
          // registry restarted): its leased range may be re-issued. Keep
          // serving from the cached view — re-leasing would hand back a
          // different endpoint base mid-flight — but say so.
          lease_id_ = 0;
        }
      }
      note_heartbeat_result(false, what);
      if (try_reregister) {
        // The registry forgot us (restart / expiry): a daemon's range is
        // its identity, so re-registering is always safe — identical
        // re-registration replaces, anything else is refused loudly.
        net::TcpAddress advertise;
        net::EndpointId first = 0;
        std::uint32_t count = 0;
        {
          MutexLock lock(mu_);
          advertise = advertise_;
          first = first_endpoint_;
          count = num_endpoints_;
        }
        try {
          service::RegisterNodeRequest req;
          req.host = advertise.host;
          req.port = advertise.port;
          req.first_endpoint = first;
          req.num_endpoints = count;
          const Buffer reply = rpc_->call_sync(
              net::kRegistryEndpoint, net::MessageType::kRegisterNode,
              service::encode_register_node_request(req),
              std::chrono::milliseconds(config_.rpc_timeout_ms));
          const service::LeaseGrant grant = service::decode_lease_grant(
              ByteView{reply.data(), reply.size()});
          {
            MutexLock lock(mu_);
            lease_id_ = grant.lease_id;
            ttl_ms_ = grant.ttl_ms;
          }
          if (m_reregisters_) m_reregisters_->inc();
          note_heartbeat_result(true, {});
          SIGMA_LOG_INFO << "registry client: re-registered "
                         << advertise.to_string() << " after lease loss";
        } catch (const net::RpcError& re) {
          SIGMA_LOG_WARN << "registry client: re-register failed: "
                         << re.what();
        }
      }
    }
  }
}

void RegistryClient::note_heartbeat_result(bool ok,
                                           const std::string& error) {
  bool transitioned = false;
  {
    MutexLock lock(mu_);
    transitioned = healthy_ != ok;
    healthy_ = ok;
  }
  if (!transitioned) return;
  if (ok) {
    SIGMA_LOG_INFO << "registry client: registry at "
                   << config_.registry.to_string() << " is reachable again";
  } else {
    SIGMA_LOG_WARN << "registry client: registry at "
                   << config_.registry.to_string()
                   << " is unreachable (" << error
                   << ") — continuing on cached fleet state";
  }
}

Buffer RegistryClient::on_request(const net::Message& m) {
  if (m.type != net::MessageType::kFleetUpdate) {
    throw std::runtime_error("registry client: unexpected request op " +
                             std::string(net::to_string(m.type)));
  }
  const service::FleetView view =
      service::decode_fleet_view(ByteView{m.body.data(), m.body.size()});
  UpdateCallback callback;
  {
    MutexLock lock(mu_);
    ++updates_received_;
    if (latest_view_.version < view.version) latest_view_ = view;
    callback = on_update_;
  }
  if (m_updates_) m_updates_->inc();
  if (callback) callback(view);
  return Buffer{};
}

}  // namespace sigma::ctrl

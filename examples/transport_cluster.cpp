// Message-passing deployment: the same middleware as quickstart, but every
// probe, duplicate test, super-chunk write and chunk read travels as a
// request/response message through the node-service stack —
//
//   BackupClient -> Cluster -> RpcEndpoint -> Transport -> NodeService
//   (event loop on the thread pool) -> DedupNode -> container storage
//
// — with a 4-deep super-chunk write pipeline.
//
//   $ ./transport_cluster
// runs over the in-process LoopbackTransport. Point it at a fleet of
// node_server daemons instead and the identical pipeline runs over TCP
// across OS processes. Endpoint ids are the fleet-wide node addresses,
// so give each daemon a distinct --first-endpoint range:
//
//   $ node_server --port 7001 --first-endpoint 100 &   # node 0
//   $ node_server --port 7002 --first-endpoint 101 &   # node 1
//   $ ./transport_cluster --tcp 127.0.0.1:7001:100,127.0.0.1:7002:101
//
// (Each map entry is host:port[:endpoint], endpoint defaulting to 100; a
// daemon hosting several nodes exposes them at consecutive ids, e.g.
// host:port:100 and host:port:101.)
#include <chrono>
#include <iostream>
#include <string>
#include <thread>

#include "common/stats.h"
#include "core/sigma_dedupe.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace sigma;

  MiddlewareConfig config;
  config.num_nodes = 4;
  config.routing = RoutingScheme::kSigma;
  config.client.super_chunk_bytes = 64 * 1024;
  config.transport.mode = TransportMode::kLoopback;  // message passing on
  config.transport.pipeline_depth = 4;               // writes in flight
  std::size_t watch_updates = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tcp" && i + 1 < argc) {
      try {
        config.transport.tcp_nodes =
            net::parse_tcp_nodes(argv[++i], net::kServiceEndpointBase);
      } catch (const std::exception& e) {
        std::cerr << "transport_cluster: " << e.what() << "\n";
        return 2;
      }
      config.transport.mode = TransportMode::kTcp;
      config.transport.rpc_timeout_ms = 10000;
      config.num_nodes = config.transport.tcp_nodes.size();
    } else if (arg == "--registry" && i + 1 < argc) {
      // Fleet discovery: lease a client endpoint range from the registry
      // and take the node map from its fleet view — no hand-written
      // host:port:endpoint list, no hand-assigned client base.
      try {
        config.transport.registry = net::parse_tcp_address(argv[++i]);
      } catch (const std::exception& e) {
        std::cerr << "transport_cluster: " << e.what() << "\n";
        return 2;
      }
      config.transport.mode = TransportMode::kTcp;
      config.transport.rpc_timeout_ms = 10000;
    } else if (arg == "--watch-updates" && i + 1 < argc) {
      try {
        watch_updates = net::parse_number(argv[++i], 1024,
                                          "value for --watch-updates");
      } catch (const std::exception& e) {
        std::cerr << "transport_cluster: " << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--reactors" && i + 1 < argc) {
      try {
        config.transport.tcp_reactors = static_cast<std::uint32_t>(
            net::parse_number(argv[++i], 64, "value for --reactors"));
      } catch (const std::exception& e) {
        std::cerr << "transport_cluster: " << e.what() << "\n";
        return 2;
      }
    } else if (arg == "--trace-sample" && i + 1 < argc) {
      try {
        obs::Tracer::instance().set_sample_every(static_cast<std::uint32_t>(
            net::parse_number(argv[++i], 0xFFFFFFFFul,
                              "value for --trace-sample")));
      } catch (const std::exception& e) {
        std::cerr << "transport_cluster: " << e.what() << "\n";
        return 2;
      }
    } else {
      std::cerr << "usage: transport_cluster [--tcp host:port[:endpoint],...]"
                << " [--registry H:P]\n"
                << "                         [--watch-updates N] [--reactors R]"
                << " [--trace-sample N]\n"
                << "  --registry H:P    lease endpoints + node map from a\n"
                << "                    fleet registry instead of --tcp\n"
                << "  --watch-updates N after the backup, wait for N pushed\n"
                << "                    fleet-view changes (membership test\n"
                << "                    hook; exits 1 on a 30s timeout)\n"
                << "  --reactors R      client transport event-loop shards\n"
                << "                    (0 = min(hardware threads, 4))\n"
                << "  --trace-sample N  sample one distributed trace per N\n"
                << "                    super-chunks; 0 disables (default "
                << obs::Tracer::kDefaultSampleEvery << ");\n"
                << "                    SIGMA_TRACE_DUMP=FILE writes the\n"
                << "                    client's spans at exit for\n"
                << "                    fleet_trace --local\n";
      return 2;
    }
  }
  obs::Tracer::instance().set_process_label("transport_cluster");

  // Two backup sessions: the second repeats most of the first, so its
  // duplicate super-chunks never ship payload bytes (source dedup).
  auto make_file = [](const std::string& path, std::size_t size, char fill) {
    ContentFile f;
    f.path = path;
    f.data.assign(size, static_cast<std::uint8_t>(fill));
    for (std::size_t i = 0; i < f.data.size(); i += 4096) {
      f.data[i] = static_cast<std::uint8_t>(i / 4096);  // block markers
    }
    return f;
  };
  std::vector<ContentFile> monday{make_file("db.dump", 500000, 'a'),
                                  make_file("logs.tar", 250000, 'b')};
  std::vector<ContentFile> tuesday = monday;
  tuesday[1] = make_file("logs.tar", 300000, 'c');  // one file changed

  if (watch_updates > 0 && !config.transport.registry) {
    std::cerr << "transport_cluster: --watch-updates requires --registry\n";
    return 2;
  }

  try {
    SigmaDedupe dedupe(config);
    std::uint64_t seen_version = 0;
    if (config.transport.registry) {
      // Early-flushed so a harness can see the wiring before the backup
      // runs (and before it kills the registry, in the failure-mode leg).
      const auto view = dedupe.cluster().fleet_view();
      seen_version = view ? view->version : 0;
      std::cout << "REGISTRY nodes=" << (view ? view->nodes.size() : 0)
                << " base=" << dedupe.cluster().client_endpoint_base()
                << " version=" << seen_version << std::endl;
    }
    if (config.transport.mode == TransportMode::kTcp) {
      std::cout << "running over TCP against " << dedupe.cluster().size()
                << " remote node service(s)\n\n";
    }
    const auto s1 = dedupe.backup("monday", monday);
    const auto s2 = dedupe.backup("tuesday", tuesday);
    dedupe.flush();

    std::cout << "monday:  " << format_bytes(s1.logical_bytes)
              << " logical, " << format_bytes(s1.transferred_bytes)
              << " over the wire\n";
    std::cout << "tuesday: " << format_bytes(s2.logical_bytes)
              << " logical, " << format_bytes(s2.transferred_bytes)
              << " over the wire\n";

    // Restore travels over the transport too (container/recipe reads).
    const Buffer restored = dedupe.restore("tuesday", "db.dump");
    const bool ok = restored == monday[0].data;
    std::cout << "restored db.dump: " << format_bytes(restored.size())
              << (ok ? " (verified)\n" : " (CORRUPT)\n");

    const auto report = dedupe.report();
    const auto net = dedupe.cluster().net_stats();
    std::cout << "\ncluster dedup ratio: "
              << TablePrinter::fmt(report.dedup_ratio())
              << "\nfingerprint-lookup messages (Fig. 7 metric): "
              << report.messages.total() << " (" << report.messages.pre_routing
              << " pre-routing + " << report.messages.after_routing
              << " after-routing)"
              << "\nwire traffic: " << net.messages_sent << " messages, "
              << format_bytes(net.bytes_sent) << " ("
              << net.requests << " requests, " << net.responses
              << " responses)\n";

    // Membership-test hook: block until the registry pushes N fleet-view
    // changes (a daemon joined or left), printing one line per change.
    if (watch_updates > 0) {
      std::cout << std::flush;
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(30);
      std::size_t observed = 0;
      while (observed < watch_updates) {
        if (std::chrono::steady_clock::now() >= deadline) {
          std::cerr << "transport_cluster: timed out waiting for "
                    << watch_updates << " fleet update(s) (saw " << observed
                    << ")\n";
          return 1;
        }
        const auto view = dedupe.cluster().fleet_view();
        if (view && view->version > seen_version) {
          seen_version = view->version;
          ++observed;
          std::cout << "FLEET-UPDATE version=" << view->version
                    << " nodes=" << view->nodes.size() << std::endl;
          continue;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(25));
      }
    }
    return ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "transport_cluster: " << e.what() << "\n";
    return 1;
  }
}

// Message-passing deployment: the same middleware as quickstart, but every
// probe, duplicate test, super-chunk write and chunk read travels as a
// request/response message through the node-service stack —
//
//   BackupClient -> Cluster -> RpcEndpoint -> Transport -> NodeService
//   (event loop on the thread pool) -> DedupNode -> container storage
//
// — with a 4-deep super-chunk write pipeline. The LoopbackTransport keeps
// delivery in-process; a socket transport would slot in behind the same
// Transport interface.
//
//   $ ./transport_cluster
#include <iostream>
#include <string>

#include "common/stats.h"
#include "core/sigma_dedupe.h"

int main() {
  using namespace sigma;

  MiddlewareConfig config;
  config.num_nodes = 4;
  config.routing = RoutingScheme::kSigma;
  config.client.super_chunk_bytes = 64 * 1024;
  config.transport.mode = TransportMode::kLoopback;  // message passing on
  config.transport.pipeline_depth = 4;               // writes in flight
  SigmaDedupe dedupe(config);

  // Two backup sessions: the second repeats most of the first, so its
  // duplicate super-chunks never ship payload bytes (source dedup).
  auto make_file = [](const std::string& path, std::size_t size, char fill) {
    ContentFile f;
    f.path = path;
    f.data.assign(size, static_cast<std::uint8_t>(fill));
    for (std::size_t i = 0; i < f.data.size(); i += 4096) {
      f.data[i] = static_cast<std::uint8_t>(i / 4096);  // block markers
    }
    return f;
  };
  std::vector<ContentFile> monday{make_file("db.dump", 500000, 'a'),
                                  make_file("logs.tar", 250000, 'b')};
  std::vector<ContentFile> tuesday = monday;
  tuesday[1] = make_file("logs.tar", 300000, 'c');  // one file changed

  const auto s1 = dedupe.backup("monday", monday);
  const auto s2 = dedupe.backup("tuesday", tuesday);
  dedupe.flush();

  std::cout << "monday:  " << format_bytes(s1.logical_bytes) << " logical, "
            << format_bytes(s1.transferred_bytes) << " over the wire\n";
  std::cout << "tuesday: " << format_bytes(s2.logical_bytes) << " logical, "
            << format_bytes(s2.transferred_bytes) << " over the wire\n";

  // Restore travels over the transport too (container/recipe reads).
  const Buffer restored = dedupe.restore("tuesday", "db.dump");
  std::cout << "restored db.dump: " << format_bytes(restored.size())
            << (restored == monday[0].data ? " (verified)\n" : " (CORRUPT)\n");

  const auto report = dedupe.report();
  const auto net = dedupe.cluster().net_stats();
  std::cout << "\ncluster dedup ratio: " << TablePrinter::fmt(report.dedup_ratio())
            << "\nfingerprint-lookup messages (Fig. 7 metric): "
            << report.messages.total() << " (" << report.messages.pre_routing
            << " pre-routing + " << report.messages.after_routing
            << " after-routing)"
            << "\nwire traffic: " << net.messages_sent << " messages, "
            << format_bytes(net.bytes_sent) << " ("
            << net.requests << " requests, " << net.responses
            << " responses)\n";
  return 0;
}

// Quickstart: back up files to a 4-node Sigma-Dedupe cluster, restore one,
// and inspect the cluster report.
//
//   $ ./quickstart
//
// This exercises the complete middleware path: client-side chunking and
// SHA-1 fingerprinting, handprint-based stateful routing of 1 MB
// super-chunks, similarity-indexed deduplication on each node, container
// storage, file recipes and restore.
#include <iostream>
#include <string>

#include "common/stats.h"
#include "core/sigma_dedupe.h"

int main() {
  using namespace sigma;

  // 1. Configure the middleware: 4 deduplication nodes, Sigma routing.
  MiddlewareConfig config;
  config.num_nodes = 4;
  config.routing = RoutingScheme::kSigma;
  config.client.chunking = ChunkingScheme::kStatic;
  config.client.chunk_bytes = 4096;
  config.client.super_chunk_bytes = 64 * 1024;  // small demo: spread super-chunks
  SigmaDedupe dedupe(config);

  // 2. Invent some files. Real applications pass their own bytes.
  auto make_file = [](const std::string& path, std::size_t size,
                      char fill) {
    ContentFile f;
    f.path = path;
    f.data.assign(size, static_cast<std::uint8_t>(fill));
    for (std::size_t i = 0; i < f.data.size(); i += 97) {
      f.data[i] = static_cast<std::uint8_t>(i);  // some variety
    }
    return f;
  };
  std::vector<ContentFile> monday{
      make_file("home/alice/report.doc", 300000, 'a'),
      make_file("home/alice/data.csv", 150000, 'b'),
  };

  // 3. First backup: everything is new.
  const BackupSummary s1 = dedupe.backup("monday", monday);
  std::cout << "monday : logical " << format_bytes(s1.logical_bytes)
            << ", transferred " << format_bytes(s1.transferred_bytes)
            << " (" << s1.chunk_count << " chunks, "
            << s1.super_chunk_count << " super-chunks)\n";

  // 4. Second backup of the same data: source dedup sends nothing.
  const BackupSummary s2 = dedupe.backup("tuesday", monday);
  std::cout << "tuesday: logical " << format_bytes(s2.logical_bytes)
            << ", transferred " << format_bytes(s2.transferred_bytes)
            << "  <- duplicates never cross the wire\n";

  // 5. Restore and verify.
  const Buffer restored = dedupe.restore("monday", "home/alice/report.doc");
  std::cout << "restore: " << format_bytes(restored.size()) << " -> "
            << (restored == monday[0].data ? "bit-exact" : "MISMATCH")
            << "\n";

  // 6. Cluster-wide report.
  const ClusterReport report = dedupe.report();
  std::cout << "\ncluster: dedup ratio "
            << TablePrinter::fmt(report.dedup_ratio()) << "x, "
            << format_bytes(report.physical_bytes) << " physical across "
            << report.node_usage.size() << " nodes (skew s/a = "
            << TablePrinter::fmt(
                   report.usage_stddev() / report.usage_mean(), 3)
            << ")\n";
  std::cout << "messages: " << report.messages.pre_routing
            << " pre-routing + " << report.messages.after_routing
            << " duplicate-test fingerprint lookups\n";
  return 0;
}

// Routing-scheme shoot-out on a generated versioned-source workload: the
// paper's Table 1 story on your screen in a few seconds.
//
//   $ ./routing_comparison [nodes]
//
// Runs the same trace through Sigma-Dedupe, EMC-style Stateless and
// Stateful routing, Extreme Binning and a HYDRAstor-style chunk DHT, and
// prints effective dedup ratio, skew and message overhead side by side.
#include <cstdlib>
#include <iostream>

#include "cluster/cluster.h"
#include "common/stats.h"
#include "workload/generators.h"

int main(int argc, char** argv) {
  using namespace sigma;

  const std::size_t nodes =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 16;
  std::cout << "Generating versioned-source workload...\n";
  const Dataset trace = linux_dataset(0.4);
  const double sdr = exact_dedup_ratio(trace);
  std::cout << "  " << format_bytes(trace.logical_bytes()) << " logical, "
            << trace.chunk_count() << " chunks, single-node dedup ratio "
            << TablePrinter::fmt(sdr) << "x\n";
  std::cout << "  cluster: " << nodes << " nodes, 256 KB super-chunks\n\n";

  TablePrinter table({"scheme", "dedup ratio", "effective (EDR)",
                      "skew s/a", "fp-lookup msgs", "msgs/chunk"});
  for (RoutingScheme scheme :
       {RoutingScheme::kSigma, RoutingScheme::kStateful,
        RoutingScheme::kStateless, RoutingScheme::kExtremeBinning,
        RoutingScheme::kChunkDht}) {
    ClusterConfig cfg;
    cfg.num_nodes = nodes;
    cfg.scheme = scheme;
    cfg.super_chunk_bytes = 256 * 1024;
    Cluster cluster(cfg);
    cluster.backup_dataset(trace);
    const ClusterReport r = cluster.report();
    table.add_row(
        {to_string(scheme), TablePrinter::fmt(r.dedup_ratio()),
         TablePrinter::fmt(r.effective_dedup_ratio()),
         TablePrinter::fmt(r.usage_stddev() / r.usage_mean(), 3),
         std::to_string(r.messages.total()),
         TablePrinter::fmt(static_cast<double>(r.messages.total()) /
                               static_cast<double>(trace.chunk_count()),
                           2)});
  }
  table.print(std::cout);
  std::cout << "\nSigma-Dedupe pairs near-Stateful dedup with "
               "near-Stateless message counts.\n";
  return 0;
}

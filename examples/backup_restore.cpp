// Incremental-forever backups: a week of nightly sessions of an evolving
// home directory, then bit-exact restore of every file from every night.
//
//   $ ./backup_restore
//
// Demonstrates the paper's headline benefit for backup workloads: after
// night one, each session transfers only the changed bytes, while every
// historical session remains independently restorable through its file
// recipes.
#include <iostream>

#include "common/random.h"
#include "common/stats.h"
#include "core/sigma_dedupe.h"

namespace {

using namespace sigma;

Buffer make_random_buffer(std::size_t n, Rng& rng) {
  Buffer out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next());
  return out;
}

// Mutate ~2% of the file in a few contiguous runs (document edits).
void edit(Buffer& data, Rng& rng) {
  if (data.empty()) return;
  for (int run = 0; run < 3; ++run) {
    const std::size_t start = rng.next_below(data.size());
    const std::size_t len =
        std::min<std::size_t>(data.size() - start, data.size() / 150 + 16);
    for (std::size_t i = start; i < start + len; ++i) {
      data[i] = static_cast<std::uint8_t>(rng.next());
    }
  }
}

}  // namespace

int main() {
  MiddlewareConfig config;
  config.num_nodes = 8;
  SigmaDedupe dedupe(config);
  Rng rng(2026);

  // The "home directory".
  std::vector<ContentFile> files;
  for (int i = 0; i < 12; ++i) {
    files.push_back({"docs/file_" + std::to_string(i) + ".bin",
                     make_random_buffer(80000 + 4096 * static_cast<std::size_t>(i),
                                 rng)});
  }

  // Keep a copy of every night's state to verify restores later.
  std::vector<std::vector<ContentFile>> history;

  std::cout << "night  logical      transferred  dedup-ratio\n";
  for (int night = 1; night <= 7; ++night) {
    if (night > 1) {
      for (auto& f : files) {
        if (rng.chance(0.4)) edit(f.data, rng);
      }
    }
    history.push_back(files);
    const std::string session = "night-" + std::to_string(night);
    const BackupSummary s = dedupe.backup(session, files);
    std::cout << night << "      " << format_bytes(s.logical_bytes)
              << "     " << format_bytes(s.transferred_bytes) << "      "
              << TablePrinter::fmt(dedupe.report().dedup_ratio()) << "x\n";
  }

  // Restore every file of every night and verify bit-exactness.
  std::size_t verified = 0;
  for (std::size_t night = 0; night < history.size(); ++night) {
    const std::string session = "night-" + std::to_string(night + 1);
    for (const auto& f : history[night]) {
      if (dedupe.restore(session, f.path) != f.data) {
        std::cerr << "MISMATCH: " << session << " " << f.path << "\n";
        return 1;
      }
      ++verified;
    }
  }
  std::cout << "\nrestored and verified " << verified
            << " file versions bit-exactly\n";

  const auto report = dedupe.report();
  std::cout << "cluster physical: " << format_bytes(report.physical_bytes)
            << " for " << format_bytes(report.logical_bytes)
            << " logical\n";
  return 0;
}

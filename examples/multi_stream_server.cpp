// Multi-stream parallel deduplication server: several backup clients push
// concurrent streams into one cluster, one thread per stream (the
// prototype's intra-node parallelism, Section 4.3).
//
//   $ ./multi_stream_server [streams]
//
// Each stream backs up its own evolving file set for three sessions; the
// example reports per-stream throughput and the per-node breakdown
// (containers, similarity-index entries, cache hit ratios).
#include <cstdlib>
#include <iostream>
#include <thread>

#include "common/hash_util.h"
#include "common/random.h"
#include "common/stats.h"
#include "core/sigma_dedupe.h"

namespace {

using namespace sigma;

std::vector<ContentFile> make_files(std::uint64_t seed, int generation) {
  // Generation g shares ~90% of its blocks with generation g-1.
  Rng rng(seed);
  std::vector<ContentFile> files;
  for (int f = 0; f < 6; ++f) {
    Buffer data(120000);
    for (std::size_t i = 0; i < data.size(); ++i) {
      const std::size_t block = i / 4096;
      // A block changes in generation g if (block, g) hashes low.
      int last_changed = 0;
      for (int g = 1; g <= generation; ++g) {
        if (mix64(seed ^ (block * 1315423911u) ^ static_cast<std::uint64_t>(g)) %
                10 == 0) {
          last_changed = g;
        }
      }
      Rng block_rng(seed ^ block ^ (static_cast<std::uint64_t>(last_changed)
                                    << 32) ^ static_cast<std::uint64_t>(f));
      data[i] = static_cast<std::uint8_t>(block_rng.next());
    }
    files.push_back({"stream" + std::to_string(seed) + "/f" +
                         std::to_string(f),
                     std::move(data)});
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t streams =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 4;

  MiddlewareConfig config;
  config.num_nodes = 4;
  config.client.super_chunk_bytes = 128 * 1024;  // spread small demo data
  SigmaDedupe dedupe(config);

  std::cout << streams << " concurrent client streams, 3 sessions each\n\n";
  for (int session = 1; session <= 3; ++session) {
    Stopwatch timer;
    std::vector<std::thread> workers;
    std::vector<BackupSummary> summaries(streams);
    for (std::size_t s = 0; s < streams; ++s) {
      workers.emplace_back([&dedupe, &summaries, s, session] {
        const auto files = make_files(1000 + s, session);
        summaries[s] = dedupe.backup(
            "s" + std::to_string(s) + "-session" + std::to_string(session),
            files, static_cast<StreamId>(s));
      });
    }
    for (auto& w : workers) w.join();
    const double elapsed = timer.seconds();

    std::uint64_t logical = 0, transferred = 0;
    for (const auto& s : summaries) {
      logical += s.logical_bytes;
      transferred += s.transferred_bytes;
    }
    std::cout << "session " << session << ": "
              << format_bytes(logical) << " in "
              << TablePrinter::fmt(elapsed * 1000, 1) << " ms ("
              << format_throughput(static_cast<double>(logical) / elapsed)
              << " aggregate), transferred " << format_bytes(transferred)
              << "\n";
  }

  std::cout << "\nper-node breakdown:\n";
  TablePrinter table({"node", "physical", "containers", "similarity idx",
                      "cache hit%", "disk lookups"});
  auto& cluster = dedupe.cluster();
  for (std::size_t i = 0; i < cluster.size(); ++i) {
    const auto& node = cluster.node(i);
    table.add_row(
        {std::to_string(i), format_bytes(node.stored_bytes()),
         std::to_string(node.container_store().container_count()),
         std::to_string(node.similarity_index().size()),
         TablePrinter::fmt(
             100 * node.fingerprint_cache().stats().hit_ratio(), 1),
         std::to_string(node.stats().disk_index_lookups)});
  }
  table.print(std::cout);
  return 0;
}

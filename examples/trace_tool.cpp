// Trace utility: generate the paper's synthetic workloads as portable
// binary chunk traces, and inspect any trace file.
//
//   $ ./trace_tool generate <linux|vm|mail|web> <path> [scale]
//   $ ./trace_tool info <path>
//
// Traces feed the cluster simulator without re-chunking/re-hashing; the
// format is the library's `workload/trace.h` serialization, so users can
// also convert their own datasets and replay them through the routing
// schemes.
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "workload/generators.h"
#include "workload/trace.h"

namespace {

using namespace sigma;

int usage() {
  std::cerr << "usage:\n"
               "  trace_tool generate <linux|vm|mail|web> <path> [scale]\n"
               "  trace_tool info <path>\n";
  return 2;
}

int generate(const std::string& kind, const std::string& path,
             double scale) {
  Dataset dataset;
  if (kind == "linux") {
    dataset = linux_dataset(scale);
  } else if (kind == "vm") {
    dataset = vm_dataset(scale);
  } else if (kind == "mail") {
    dataset = mail_dataset(scale);
  } else if (kind == "web") {
    dataset = web_dataset(scale);
  } else {
    return usage();
  }
  write_trace(dataset, path);
  std::cout << "wrote " << dataset.name << " trace: "
            << format_bytes(dataset.logical_bytes()) << " logical, "
            << dataset.chunk_count() << " chunks, "
            << dataset.backups.size() << " backup generations -> " << path
            << "\n";
  return 0;
}

int info(const std::string& path) {
  const Dataset dataset = read_trace(path);
  std::cout << "trace: " << dataset.name << "\n"
            << "  file metadata : "
            << (dataset.has_file_metadata ? "yes" : "no (chunk stream)")
            << "\n"
            << "  generations   : " << dataset.backups.size() << "\n"
            << "  logical bytes : "
            << format_bytes(dataset.logical_bytes()) << "\n"
            << "  chunks        : " << dataset.chunk_count() << "\n"
            << "  exact dedup   : "
            << TablePrinter::fmt(exact_dedup_ratio(dataset)) << "x\n";
  TablePrinter table({"generation", "files", "chunks", "logical"});
  for (const auto& b : dataset.backups) {
    table.add_row({b.session, std::to_string(b.files.size()),
                   std::to_string(b.chunk_count()),
                   format_bytes(b.logical_bytes())});
  }
  table.print(std::cout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string command = argv[1];
  try {
    if (command == "generate" && argc >= 4) {
      const double scale = argc >= 5 ? std::atof(argv[4]) : 0.25;
      return generate(argv[2], argv[3], scale);
    }
    if (command == "info") {
      return info(argv[2]);
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}

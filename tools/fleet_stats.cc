// Scrape the metrics plane of a running node_server fleet.
//
//   $ fleet_stats --nodes 127.0.0.1:7001:100,127.0.0.1:7002:101
//   == daemon 127.0.0.1:7001 (endpoint 100) ==
//   counter   net.requests   ...
//   ...
//   == fleet (2 daemons merged) ==
//   ...
//
// The node map uses the same "host:port[:endpoint]" syntax as every other
// client. One kStatsSnapshot RPC per *daemon* (multiple endpoints behind
// one address share a process, and every endpoint answers with the same
// daemon-wide snapshot, so extra endpoints are skipped). The merged view
// is the associative fold of the per-daemon snapshots.
//
// --json switches to a single machine-readable document:
//   {"daemons": [{"address": "...", "endpoint": N, "metrics": {...}}, ...],
//    "merged": {...}}
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/json.h"
#include "ctrl/registry_client.h"
#include "obs/metrics_render.h"
#include "obs/metrics_wire.h"
#include "fleet_scrape.h"

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "fleet_stats: " << error << "\n";
  std::cerr << "usage: fleet_stats --nodes host:port[:endpoint],...\n"
            << "                   [--registry H:P] [--json] [--timeout-ms T]\n"
            << "  --nodes MAP    the fleet's node map (same syntax as the\n"
            << "                 backup clients); one scrape per distinct\n"
            << "                 host:port\n"
            << "  --registry H:P fetch the node map from a fleet registry\n"
            << "                 instead of writing one by hand\n"
            << "  --json         machine-readable output (per-daemon +\n"
            << "                 merged)\n"
            << "  --timeout-ms T per-scrape RPC timeout (default 5000)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sigma;

  std::string nodes_csv;
  std::string registry_spec;
  bool json = false;
  std::uint32_t timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes_csv = value();
    } else if (arg == "--registry") {
      registry_spec = value();
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--timeout-ms") {
      try {
        timeout_ms = static_cast<std::uint32_t>(
            net::parse_number(value(), 3600000, "value for --timeout-ms"));
      } catch (const net::SocketError& e) {
        usage(e.what());
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option " + arg);
    }
  }
  if (nodes_csv.empty() == registry_spec.empty()) {
    usage("exactly one of --nodes / --registry is required");
  }

  try {
    if (!registry_spec.empty()) {
      // Ask the registry for the live fleet view and scrape that — the
      // same daemon set a --registry client would be wired against.
      ctrl::RegistryClientConfig rc;
      rc.registry = net::parse_tcp_address(registry_spec);
      rc.rpc_timeout_ms = timeout_ms;
      ctrl::RegistryClient registry(rc);
      const service::FleetView view = registry.fetch_fleet();
      if (view.nodes.empty()) {
        std::cerr << "fleet_stats: registry at " << registry_spec
                  << " has no registered node daemons (view v"
                  << view.version << ")\n";
        return 1;
      }
      for (const auto& node : view.nodes) {
        if (!nodes_csv.empty()) nodes_csv += ',';
        nodes_csv += node.address.to_string() + ':' +
                     std::to_string(node.endpoint);
      }
    }
    struct DaemonStats {
      std::string address;
      net::EndpointId endpoint;
      obs::MetricsSnapshot snapshot;
    };
    std::vector<DaemonStats> scraped;
    obs::MetricsSnapshot merged;
    for (tools::DaemonScrape& raw : tools::scrape_fleet(
             nodes_csv, net::MessageType::kStatsSnapshot, timeout_ms)) {
      DaemonStats d;
      d.address = std::move(raw.address);
      d.endpoint = raw.endpoint;
      d.snapshot = obs::decode_metrics_snapshot(
          ByteView{raw.body.data(), raw.body.size()});
      merged.merge(d.snapshot);
      scraped.push_back(std::move(d));
    }

    if (json) {
      std::string out = "{\"daemons\": [";
      for (std::size_t i = 0; i < scraped.size(); ++i) {
        if (i > 0) out += ", ";
        out += "{\"address\": " + json_quote(scraped[i].address) +
               ", \"endpoint\": " + std::to_string(scraped[i].endpoint) +
               ", \"metrics\": " + obs::render_json(scraped[i].snapshot) +
               "}";
      }
      out += "], \"merged\": " + obs::render_json(merged) + "}";
      std::cout << out << std::endl;
    } else {
      for (const auto& d : scraped) {
        std::cout << "== daemon " << d.address << " (endpoint " << d.endpoint
                  << ") ==\n"
                  << obs::render_text(d.snapshot);
      }
      std::cout << "== fleet (" << scraped.size() << " daemon"
                << (scraped.size() == 1 ? "" : "s") << " merged) ==\n"
                << obs::render_text(merged) << std::flush;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fleet_stats: " << e.what() << "\n";
    return 1;
  }
}

// Scrape the tracing plane of a running node_server fleet and merge the
// spans into one Chrome trace-event JSON document (loadable in Perfetto
// or chrome://tracing).
//
//   $ fleet_trace --nodes 127.0.0.1:7001:100,127.0.0.1:7002:101
//                 --local client-trace.bin --out trace.json
//   fleet_trace: 2 daemons + 1 local dump, 37 spans, 3 traces
//                (2 cross-process)
//
// One kTraceDump RPC per distinct daemon address (endpoint dedup shared
// with fleet_stats via tools/fleet_scrape.h). --local merges binary dump
// files written by SIGUSR2 or SIGMA_TRACE_DUMP — that is how a
// short-lived backup client's spans join the daemons' on one timeline.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "obs/trace_render.h"
#include "obs/trace_wire.h"
#include "fleet_scrape.h"

namespace {

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "fleet_trace: " << error << "\n";
  std::cerr << "usage: fleet_trace [--nodes host:port[:endpoint],...]\n"
            << "                   [--local FILE]... [--out FILE]\n"
            << "                   [--timeout-ms T]\n"
            << "  --nodes MAP    scrape each distinct daemon's span rings\n"
            << "                 over the kTraceDump wire op (same node-map\n"
            << "                 syntax as the backup clients)\n"
            << "  --local FILE   also merge a binary span dump written by\n"
            << "                 SIGUSR2 or SIGMA_TRACE_DUMP (repeatable)\n"
            << "  --out FILE     write the Chrome trace-event JSON here\n"
            << "                 (default: stdout)\n"
            << "  --timeout-ms T per-scrape RPC timeout (default 5000)\n"
            << "At least one of --nodes / --local is required. A summary\n"
            << "(spans, traces, cross-process traces) goes to stderr.\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sigma;

  std::string nodes_csv;
  std::vector<std::string> local_files;
  std::string out_path;
  std::uint32_t timeout_ms = 5000;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--nodes") {
      nodes_csv = value();
    } else if (arg == "--local") {
      local_files.push_back(value());
    } else if (arg == "--out") {
      out_path = value();
    } else if (arg == "--timeout-ms") {
      try {
        timeout_ms = static_cast<std::uint32_t>(
            net::parse_number(value(), 3600000, "value for --timeout-ms"));
      } catch (const net::SocketError& e) {
        usage(e.what());
      }
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option " + arg);
    }
  }
  if (nodes_csv.empty() && local_files.empty()) {
    usage("at least one of --nodes / --local is required");
  }

  try {
    std::vector<obs::SpanDump> dumps;
    std::size_t daemons = 0;
    if (!nodes_csv.empty()) {
      for (tools::DaemonScrape& raw : tools::scrape_fleet(
               nodes_csv, net::MessageType::kTraceDump, timeout_ms)) {
        obs::SpanDump dump = obs::decode_span_dump(
            ByteView{raw.body.data(), raw.body.size()});
        if (dump.process.empty()) dump.process = raw.address;
        dumps.push_back(std::move(dump));
        ++daemons;
      }
    }
    for (const std::string& path : local_files) {
      dumps.push_back(obs::read_span_dump_file(path));
    }

    // Summary: spans, distinct traces, and how many traces were stitched
    // across more than one process — the whole point of the plane.
    std::size_t spans = 0;
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::set<std::uint64_t>>
        trace_pids;
    for (const obs::SpanDump& dump : dumps) {
      spans += dump.spans.size();
      for (const obs::SpanRecord& rec : dump.spans) {
        trace_pids[{rec.trace_hi, rec.trace_lo}].insert(dump.pid);
      }
    }
    std::size_t cross_process = 0;
    for (const auto& [id, pids] : trace_pids) {
      if (pids.size() > 1) ++cross_process;
    }

    const std::string json = obs::render_chrome_trace(dumps);
    if (out_path.empty()) {
      std::cout << json << std::endl;
    } else {
      std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
      if (!out) throw std::runtime_error("cannot open " + out_path);
      out << json << "\n";
      if (!out.flush()) throw std::runtime_error("write failed: " + out_path);
    }

    std::cerr << "fleet_trace: " << daemons << " daemon"
              << (daemons == 1 ? "" : "s") << " + " << local_files.size()
              << " local dump" << (local_files.size() == 1 ? "" : "s") << ", "
              << spans << " span" << (spans == 1 ? "" : "s") << ", "
              << trace_pids.size() << " trace"
              << (trace_pids.size() == 1 ? "" : "s") << " (" << cross_process
              << " cross-process)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "fleet_trace: " << e.what() << "\n";
    return 1;
  }
}

// Shared fleet-scrape plumbing for the observability CLIs (fleet_stats,
// fleet_trace): parse a "host:port[:endpoint]" node map, dial the fleet,
// and issue exactly one scrape RPC per distinct daemon address — multiple
// endpoints behind one address share a process, and every endpoint
// answers scrape ops (kStatsSnapshot, kTraceDump) with the same
// process-wide view, so extra endpoints are skipped.
#pragma once

#include <chrono>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "net/rpc.h"
#include "net/tcp/tcp_transport.h"

namespace sigma::tools {

/// One daemon's scrape result: its address ("host:port"), the endpoint
/// the RPC went to, and the raw response body (decode per-op).
struct DaemonScrape {
  std::string address;
  net::EndpointId endpoint;
  Buffer body;
};

/// Scrape every distinct daemon in `nodes_csv` with one `op` RPC each
/// (first endpoint per address wins). Throws on parse errors, connection
/// failures and RPC timeouts — the CLIs surface the message and exit
/// non-zero.
inline std::vector<DaemonScrape> scrape_fleet(const std::string& nodes_csv,
                                              net::MessageType op,
                                              std::uint32_t timeout_ms) {
  const auto nodes =
      net::parse_tcp_nodes(nodes_csv, net::kServiceEndpointBase);

  std::map<std::pair<std::string, std::uint16_t>, net::EndpointId> daemons;
  net::TcpTransportConfig tcp;
  for (const auto& node : nodes) {
    tcp.remote_endpoints.emplace(node.endpoint, node.address);
    daemons.emplace(std::make_pair(node.address.host, node.address.port),
                    node.endpoint);
  }
  net::TcpTransport transport(std::move(tcp));
  net::RpcEndpoint rpc(transport);

  std::vector<DaemonScrape> scraped;
  scraped.reserve(daemons.size());
  for (const auto& [address, endpoint] : daemons) {
    DaemonScrape d;
    d.address = address.first + ":" + std::to_string(address.second);
    d.endpoint = endpoint;
    d.body = rpc.call_sync(endpoint, op, Buffer{},
                           std::chrono::milliseconds(timeout_ms));
    scraped.push_back(std::move(d));
  }
  return scraped;
}

}  // namespace sigma::tools

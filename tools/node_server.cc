// Standalone deduplication node daemon: hosts N DedupNode services behind
// a TCP listener, so a backup fleet spans OS processes.
//
//   $ node_server --port 7001 --nodes 2
//   READY port=7001 endpoints=100..101 nodes=2
//
// With `--backend file --data-dir DIR` node state is durable: sealed
// containers, their metadata sidecars and a versioned per-node manifest
// live under DIR/node-<i>, written atomically (temp file + rename) and
// fsynced. On restart the daemon rebuilds every node's fingerprint and
// resemblance indexes from the sealed containers before it binds the
// listening socket — one RECOVERED line per node, then READY:
//
//   $ node_server --backend file --data-dir /var/lib/sigma --port 7001
//   RECOVERED node=0 endpoint=100 containers=42 chunks=5376 skipped=0
//   READY port=7001 endpoints=100..100 nodes=1
//
// The READY line is machine-parseable (scripts wait for it, and --port 0
// reports the ephemeral port actually bound). The daemon serves until
// SIGINT/SIGTERM, then tears down cleanly: services drain their inboxes
// and — file backend — every open container is sealed to disk, so a
// SIGTERM loses nothing and only a hard kill loses unsealed chunks.
//
// Observability: SIGUSR1 dumps the daemon-wide metrics snapshot (every
// counter, gauge and latency histogram, plus the legacy struct stats) to
// stderr without disturbing service; the same dump is printed once more
// on clean shutdown. SIGUSR2 writes the trace flight recorder (the
// per-thread span rings, see obs/trace.h) to the --trace-dump file.
// Remote scraping goes through the kStatsSnapshot and kTraceDump wire
// ops (see tools/fleet_stats and tools/fleet_trace).
//
// Point a client at a fleet with a node map, one entry per hosted node:
//   transport_cluster --tcp 127.0.0.1:7001:100,127.0.0.1:7001:101
#include <unistd.h>

#include <csignal>
#include <cstdlib>
#include <iostream>
#include <semaphore>
#include <string>

#include "obs/metrics_render.h"
#include "obs/trace.h"
#include "server/node_server.h"

namespace {

// Signals release the semaphore; flags say why it was released (USR1/2
// may fire any number of times before the loop reacts, hence counting).
std::counting_semaphore<> g_signal{0};
volatile std::sig_atomic_t g_shutdown_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;
volatile std::sig_atomic_t g_trace_dump_requested = 0;

void handle_shutdown(int) {
  g_shutdown_requested = 1;
  g_signal.release();
}

void handle_dump(int) {
  g_dump_requested = 1;
  g_signal.release();
}

void handle_trace_dump(int) {
  g_trace_dump_requested = 1;
  g_signal.release();
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "node_server: " << error << "\n";
  std::cerr << "usage: node_server [--host H] [--port P] [--nodes N]\n"
            << "                   [--first-endpoint E] [--service-threads T]\n"
            << "                   [--reactors R] [--force-poll]\n"
            << "                   [--container-mb MB] [--approximate]\n"
            << "                   [--backend memory|file] [--data-dir DIR]\n"
            << "                   [--no-fsync] [--trace-sample N]\n"
            << "                   [--trace-dump FILE] [--registry H:P]\n"
            << "                   [--registry-heartbeat-ms T]\n"
            << "  --host H             listen address (default 127.0.0.1)\n"
            << "  --port P             listen port; 0 picks one (default 0)\n"
            << "  --nodes N            dedup nodes to host (default 1)\n"
            << "  --first-endpoint E   endpoint id of node 0 (default "
            << sigma::net::kServiceEndpointBase << ")\n"
            << "  --service-threads T  event-loop threads (default: 2 per "
               "node)\n"
            << "  --reactors R         transport event-loop shards (default\n"
            << "                       0 = min(hardware threads, 4))\n"
            << "  --force-poll         use the portable poll() loop even\n"
            << "                       where epoll is available\n"
            << "  --container-mb MB    container capacity (default 4)\n"
            << "  --approximate        similarity-index-only dedup (Fig. 5b)\n"
            << "  --backend B          node state storage (default memory);\n"
            << "                       'file' persists containers under\n"
            << "                       --data-dir and recovers them on "
               "restart\n"
            << "  --data-dir DIR       file-backend root (node i stores in\n"
            << "                       DIR/node-<i>)\n"
            << "  --no-fsync           skip fsync on container seal (faster,\n"
            << "                       survives kills but not power loss)\n"
            << "  --trace-sample N     sample one distributed trace per N\n"
            << "                       root decisions; 0 disables (default\n"
            << "                       " << sigma::obs::Tracer::kDefaultSampleEvery
            << "; SIGMA_TRACE_SAMPLE also works)\n"
            << "  --trace-dump FILE    where SIGUSR2 writes the span flight\n"
            << "                       recorder (default\n"
            << "                       sigma-trace.<pid>.bin); merge with\n"
            << "                       fleet_trace --local\n"
            << "  --registry H:P       fleet registry to register this\n"
            << "                       daemon's endpoint range with (see\n"
            << "                       registry_server); clients then find\n"
            << "                       the fleet with --registry instead of\n"
            << "                       a hand-written node map\n"
            << "  --registry-heartbeat-ms T  heartbeat cadence override\n"
            << "                       (default: a third of the lease TTL)\n"
            << "signals: SIGUSR1 dumps the metrics snapshot to stderr;\n"
            << "         SIGUSR2 dumps the trace rings to --trace-dump;\n"
            << "         SIGINT/SIGTERM shut down cleanly\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sigma;

  server::NodeServerConfig config;
  std::string trace_dump_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    auto number = [&](unsigned long max) -> unsigned long {
      try {
        return net::parse_number(value(), max, "value for " + arg);
      } catch (const net::SocketError& e) {
        usage(e.what());
      }
    };
    if (arg == "--host") {
      config.listen.host = value();
    } else if (arg == "--port") {
      config.listen.port = static_cast<std::uint16_t>(number(65535));
    } else if (arg == "--nodes") {
      config.num_nodes = number(4096);
    } else if (arg == "--first-endpoint") {
      config.first_endpoint =
          static_cast<net::EndpointId>(number(0xFFFFFFFFul));
    } else if (arg == "--service-threads") {
      config.service_threads = number(1024);
    } else if (arg == "--reactors") {
      config.reactors = static_cast<std::uint32_t>(number(64));
    } else if (arg == "--force-poll") {
      ::setenv("SIGMA_TCP_FORCE_POLL", "1", 1);
    } else if (arg == "--container-mb") {
      config.node.container_capacity_bytes = number(1ul << 20) << 20;
    } else if (arg == "--approximate") {
      config.node.use_disk_index = false;
    } else if (arg == "--backend") {
      const std::string kind = value();
      if (kind == "memory") {
        config.backend = server::BackendKind::kMemory;
      } else if (kind == "file") {
        config.backend = server::BackendKind::kFile;
      } else {
        usage("unknown backend '" + kind + "' (memory|file)");
      }
    } else if (arg == "--data-dir") {
      config.data_dir = value();
    } else if (arg == "--no-fsync") {
      config.fsync = false;
    } else if (arg == "--trace-sample") {
      obs::Tracer::instance().set_sample_every(
          static_cast<std::uint32_t>(number(0xFFFFFFFFul)));
    } else if (arg == "--trace-dump") {
      trace_dump_path = value();
    } else if (arg == "--registry") {
      try {
        config.registry = net::parse_tcp_address(value());
      } catch (const net::SocketError& e) {
        usage(e.what());
      }
    } else if (arg == "--registry-heartbeat-ms") {
      config.registry_heartbeat_ms =
          static_cast<std::uint32_t>(number(3600000));
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option " + arg);
    }
  }
  if (config.backend == server::BackendKind::kFile &&
      config.data_dir.empty()) {
    usage("--backend file requires --data-dir");
  }
  if (config.backend == server::BackendKind::kMemory &&
      !config.data_dir.empty()) {
    usage("--data-dir requires --backend file");
  }

  try {
    // Construction recovers durable state (file backend) before the
    // listening socket exists — RECOVERED and READY are honest.
    server::NodeServer server(config);
    std::signal(SIGINT, handle_shutdown);
    std::signal(SIGTERM, handle_shutdown);
    std::signal(SIGUSR1, handle_dump);
    std::signal(SIGUSR2, handle_trace_dump);
    std::signal(SIGPIPE, SIG_IGN);

    obs::Tracer::instance().set_process_label(
        "node_server:" + std::to_string(server.port()));
    if (trace_dump_path.empty()) {
      trace_dump_path =
          "sigma-trace." + std::to_string(::getpid()) + ".bin";
    }

    if (config.backend == server::BackendKind::kFile) {
      for (std::size_t i = 0; i < server.num_nodes(); ++i) {
        const RecoveryReport& r = server.recovery(i);
        std::cout << "RECOVERED node=" << i << " endpoint="
                  << server.endpoint(i) << " containers="
                  << r.containers_recovered << " chunks="
                  << r.chunks_recovered << " skipped="
                  << r.containers_skipped << "\n";
      }
    }
    if (const ctrl::RegistryClient* rc = server.registry_client()) {
      std::cout << "REGISTERED registry=" << config.registry->to_string()
                << " lease=" << rc->lease_id()
                << " ttl_ms=" << rc->ttl_ms() << "\n";
    }
    std::cout << "READY port=" << server.port() << " endpoints="
              << server.endpoint(0) << ".."
              << server.endpoint(server.num_nodes() - 1)
              << " nodes=" << server.num_nodes()
              << " reactors=" << server.reactors() << std::endl;

    // Serve until SIGINT/SIGTERM; SIGUSR1 dumps metrics and SIGUSR2 the
    // trace rings, both without disturbing service.
    for (;;) {
      g_signal.acquire();
      if (g_dump_requested) {
        g_dump_requested = 0;
        std::cerr << "METRICS (SIGUSR1) port=" << server.port() << "\n"
                  << obs::render_text(server.metrics_snapshot());
      }
      if (g_trace_dump_requested) {
        g_trace_dump_requested = 0;
        try {
          obs::Tracer::instance().dump_to_file(trace_dump_path);
          std::cerr << "TRACE (SIGUSR2) port=" << server.port()
                    << " file=" << trace_dump_path << "\n";
        } catch (const std::exception& e) {
          std::cerr << "node_server: trace dump failed: " << e.what()
                    << "\n";
        }
      }
      if (g_shutdown_requested) break;
    }

    // The final readout must precede flush(): flushing unbinds the
    // services, and the snapshot folds their counters in.
    const obs::MetricsSnapshot final_snapshot = server.metrics_snapshot();

    // Clean shutdown: seal open containers so a file-backed daemon comes
    // back with everything it had accepted.
    server.flush();

    std::uint64_t served = 0;
    for (std::size_t i = 0; i < server.num_nodes(); ++i) {
      const std::uint64_t* count = final_snapshot.find_counter(
          "svc.node" + std::to_string(i) + ".requests_served");
      if (count) served += *count;
    }
    std::cerr << "node_server: shutting down (" << served
              << " requests served)\n"
              << obs::render_text(final_snapshot);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "node_server: " << e.what() << "\n";
    return 1;
  }
}

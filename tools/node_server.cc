// Standalone deduplication node daemon: hosts N DedupNode services behind
// a TCP listener, so a backup fleet spans OS processes.
//
//   $ node_server --port 7001 --nodes 2
//   READY port=7001 endpoints=100..101 nodes=2
//
// The READY line is machine-parseable (scripts wait for it, and --port 0
// reports the ephemeral port actually bound). The daemon serves until
// SIGINT/SIGTERM, then tears down cleanly: services drain their inboxes,
// open containers stay as they were (clients flush explicitly).
//
// Point a client at a fleet with a node map, one entry per hosted node:
//   transport_cluster --tcp 127.0.0.1:7001:100,127.0.0.1:7001:101
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <semaphore>
#include <string>

#include "server/node_server.h"

namespace {

std::binary_semaphore g_shutdown{0};

void handle_signal(int) { g_shutdown.release(); }

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "node_server: " << error << "\n";
  std::cerr << "usage: node_server [--host H] [--port P] [--nodes N]\n"
            << "                   [--first-endpoint E] [--service-threads T]\n"
            << "                   [--container-mb MB] [--approximate]\n"
            << "  --host H             listen address (default 127.0.0.1)\n"
            << "  --port P             listen port; 0 picks one (default 0)\n"
            << "  --nodes N            dedup nodes to host (default 1)\n"
            << "  --first-endpoint E   endpoint id of node 0 (default "
            << sigma::net::kServiceEndpointBase << ")\n"
            << "  --service-threads T  event-loop threads (default: 2 per "
               "node)\n"
            << "  --container-mb MB    container capacity (default 4)\n"
            << "  --approximate        similarity-index-only dedup (Fig. 5b)\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sigma;

  server::NodeServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    auto number = [&](unsigned long max) -> unsigned long {
      try {
        return net::parse_number(value(), max, "value for " + arg);
      } catch (const net::SocketError& e) {
        usage(e.what());
      }
    };
    if (arg == "--host") {
      config.listen.host = value();
    } else if (arg == "--port") {
      config.listen.port = static_cast<std::uint16_t>(number(65535));
    } else if (arg == "--nodes") {
      config.num_nodes = number(4096);
    } else if (arg == "--first-endpoint") {
      config.first_endpoint =
          static_cast<net::EndpointId>(number(0xFFFFFFFFul));
    } else if (arg == "--service-threads") {
      config.service_threads = number(1024);
    } else if (arg == "--container-mb") {
      config.node.container_capacity_bytes = number(1ul << 20) << 20;
    } else if (arg == "--approximate") {
      config.node.use_disk_index = false;
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option " + arg);
    }
  }

  try {
    server::NodeServer server(config);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "READY port=" << server.port() << " endpoints="
              << server.endpoint(0) << ".."
              << server.endpoint(server.num_nodes() - 1)
              << " nodes=" << server.num_nodes() << std::endl;

    g_shutdown.acquire();  // serve until SIGINT/SIGTERM

    std::uint64_t served = 0;
    for (std::size_t i = 0; i < server.num_nodes(); ++i) {
      served += server.service(i).stats().requests_served;
    }
    std::cerr << "node_server: shutting down (" << served
              << " requests served)\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "node_server: " << e.what() << "\n";
    return 1;
  }
}

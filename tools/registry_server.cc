// Standalone fleet registry daemon: the control plane node daemons
// register their endpoint ranges with and clients lease client endpoint
// ranges from (see src/ctrl/registry_server.h).
//
//   $ registry_server --port 7000
//   READY port=7000 ttl_ms=5000
//
// Daemons point at it with `node_server --registry 127.0.0.1:7000`;
// clients with `transport_cluster --registry 127.0.0.1:7000`. The READY
// line is machine-parseable (scripts wait for it, and --port 0 reports
// the ephemeral port actually bound).
//
// SIGUSR1 dumps the registry metrics snapshot (lease counts, refusals,
// pushes) to stderr; SIGINT/SIGTERM shut down cleanly. The same wire
// endpoint also answers kStatsSnapshot, so fleet_stats can scrape a
// registry like any daemon.
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <semaphore>
#include <string>

#include "ctrl/registry_server.h"
#include "net/tcp/socket.h"
#include "obs/metrics_render.h"

namespace {

std::counting_semaphore<> g_signal{0};
volatile std::sig_atomic_t g_shutdown_requested = 0;
volatile std::sig_atomic_t g_dump_requested = 0;

void handle_shutdown(int) {
  g_shutdown_requested = 1;
  g_signal.release();
}

void handle_dump(int) {
  g_dump_requested = 1;
  g_signal.release();
}

[[noreturn]] void usage(const std::string& error = "") {
  if (!error.empty()) std::cerr << "registry_server: " << error << "\n";
  std::cerr << "usage: registry_server [--host H] [--port P] [--ttl-ms T]\n"
            << "                       [--reactors R]\n"
            << "  --host H      listen address (default 127.0.0.1)\n"
            << "  --port P      listen port; 0 picks one (default 0)\n"
            << "  --ttl-ms T    lease time-to-live; a lease with no\n"
            << "                heartbeat for T ms expires and its range\n"
            << "                is reclaimed (default 5000)\n"
            << "  --reactors R  transport event-loop shards (default 1)\n"
            << "signals: SIGUSR1 dumps the metrics snapshot to stderr;\n"
            << "         SIGINT/SIGTERM shut down cleanly\n";
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sigma;

  ctrl::RegistryServerConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage("missing value for " + arg);
      return argv[++i];
    };
    auto number = [&](unsigned long max) -> unsigned long {
      try {
        return net::parse_number(value(), max, "value for " + arg);
      } catch (const net::SocketError& e) {
        usage(e.what());
      }
    };
    if (arg == "--host") {
      config.listen.host = value();
    } else if (arg == "--port") {
      config.listen.port = static_cast<std::uint16_t>(number(65535));
    } else if (arg == "--ttl-ms") {
      config.lease_ttl_ms = static_cast<std::uint32_t>(number(3600000));
      if (config.lease_ttl_ms == 0) usage("--ttl-ms must be positive");
    } else if (arg == "--reactors") {
      config.reactors = static_cast<std::uint32_t>(number(64));
    } else if (arg == "--help" || arg == "-h") {
      usage();
    } else {
      usage("unknown option " + arg);
    }
  }

  try {
    ctrl::RegistryServer server(config);
    std::signal(SIGINT, handle_shutdown);
    std::signal(SIGTERM, handle_shutdown);
    std::signal(SIGUSR1, handle_dump);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "READY port=" << server.port()
              << " ttl_ms=" << config.lease_ttl_ms
              << " endpoint=" << net::kRegistryEndpoint << std::endl;

    for (;;) {
      g_signal.acquire();
      if (g_dump_requested) {
        g_dump_requested = 0;
        std::cerr << "METRICS (SIGUSR1) port=" << server.port() << "\n"
                  << obs::render_text(server.metrics_snapshot());
      }
      if (g_shutdown_requested) break;
    }

    const obs::MetricsSnapshot final_snapshot = server.metrics_snapshot();
    std::cerr << "registry_server: shutting down (nodes="
              << server.node_lease_count()
              << " clients=" << server.client_lease_count() << ")\n"
              << obs::render_text(final_snapshot);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "registry_server: " << e.what() << "\n";
    return 1;
  }
}
